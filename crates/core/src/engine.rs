//! The engine: space + objects + index, kept consistent.

use crate::error::EngineError;
use crate::snapshot::EngineSnapshot;
use idq_geom::Point2;
use idq_index::{CompositeIndex, IndexConfig};
use idq_model::IndoorPoint;
use idq_model::{
    Direction, DoorId, Floor, IndoorSpace, PartitionId, PartitionSpec, SplitLine, TopologyEvent,
};
use idq_objects::{GaussianSampler, ObjectId, ObjectStore, UncertainObject};
use idq_query::{KnnResult, Outcome, Query, QueryOptions, RangeResult};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Engine configuration: index layout plus default query options.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineConfig {
    /// Composite-index parameters (fanout, `T_shape`, bulk load).
    pub index: IndexConfig,
    /// Default query options (ablation switches, subgraph slack).
    pub query: QueryOptions,
}

/// The integrated engine: one consistent view of the indoor world.
#[derive(Debug)]
pub struct IndoorEngine {
    space: IndoorSpace,
    store: ObjectStore,
    index: CompositeIndex,
    options: QueryOptions,
    /// Largest uncertainty radius seen, used to widen the subgraph slack.
    max_radius: f64,
}

impl IndoorEngine {
    /// Builds an engine over a space with no objects yet.
    pub fn new(space: IndoorSpace, config: EngineConfig) -> Result<Self, EngineError> {
        Self::with_objects(space, ObjectStore::new(), config)
    }

    /// Builds an engine over a space and an existing object population.
    pub fn with_objects(
        space: IndoorSpace,
        store: ObjectStore,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        let index = CompositeIndex::build(&space, &store, config.index)?;
        let max_radius = store.iter().map(|o| o.region.radius).fold(0.0f64, f64::max);
        Ok(IndoorEngine {
            space,
            store,
            index,
            options: config.query,
            max_radius,
        })
    }

    // ---- accessors -------------------------------------------------------

    /// The indoor space.
    pub fn space(&self) -> &IndoorSpace {
        &self.space
    }

    /// The object population.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// The composite index.
    pub fn index(&self) -> &CompositeIndex {
        &self.index
    }

    /// The effective default query options (slack widened to the largest
    /// uncertainty region inserted so far).
    pub fn query_options(&self) -> QueryOptions {
        let by_radius = QueryOptions::for_max_radius(self.max_radius);
        QueryOptions {
            subgraph_slack: self.options.subgraph_slack.max(by_radius.subgraph_slack),
            ..self.options
        }
    }

    // ---- snapshots (sessions over a consistent read view) -------------------

    /// A consistent read view over the current space, objects and index,
    /// using the engine's effective default options. Holding the snapshot
    /// borrows the engine immutably, so no update can slip in between the
    /// queries issued through it.
    pub fn snapshot(&self) -> EngineSnapshot<'_> {
        EngineSnapshot::new(&self.space, &self.store, &self.index, self.query_options())
    }

    /// A read view with explicit query options (ablations, exact
    /// refinement…).
    pub fn snapshot_with(&self, options: QueryOptions) -> EngineSnapshot<'_> {
        EngineSnapshot::new(&self.space, &self.store, &self.index, options)
    }

    /// Evaluates one typed [`Query`] on a fresh default snapshot.
    pub fn execute(&self, query: &Query) -> Result<Outcome, EngineError> {
        self.snapshot().execute(query)
    }

    /// Evaluates a batch of typed [`Query`]s on a fresh default snapshot,
    /// reusing one evaluation context per (query point, floor) group.
    pub fn execute_batch(&self, queries: &[Query]) -> Result<Vec<Outcome>, EngineError> {
        self.snapshot().execute_batch(queries)
    }

    // ---- object management (§III-C.2) --------------------------------------

    /// Inserts a fully-formed uncertain object.
    pub fn insert_object(&mut self, object: UncertainObject) -> Result<(), EngineError> {
        let id = object.id;
        let radius = object.region.radius;
        self.index.insert_object(&self.space, &object)?;
        if let Err(e) = self.store.insert(object) {
            // Roll the index back so layers stay consistent. The index
            // insert above succeeded, so `id` was not indexed before and
            // removal undoes exactly that insert.
            self.index.remove_object(id)?;
            return Err(e.into());
        }
        self.max_radius = self.max_radius.max(radius);
        Ok(())
    }

    /// Samples and inserts an object: Gaussian instances in a circular
    /// region, per the paper's object model (§V-A).
    pub fn insert_object_at(
        &mut self,
        center: Point2,
        floor: Floor,
        radius: f64,
        instances: usize,
        seed: u64,
    ) -> Result<ObjectId, EngineError> {
        let id = self.store.allocate_id();
        let sampler = GaussianSampler {
            instances: instances.max(1),
            ..GaussianSampler::default()
        };
        let mut rng = StdRng::seed_from_u64(seed ^ id.0);
        let object = sampler.sample(id, center, floor, radius, &self.space, &mut rng)?;
        self.insert_object(object)?;
        Ok(id)
    }

    /// Removes an object, returning it.
    pub fn remove_object(&mut self, id: ObjectId) -> Result<UncertainObject, EngineError> {
        self.index.remove_object(id)?;
        Ok(self.store.remove(id)?)
    }

    /// Moves an object: deletion followed by insertion with a re-sampled
    /// uncertainty region at the new position (§III-C.2's update flow).
    ///
    /// Built from the same [`IndoorEngine::remove_object`] /
    /// [`IndoorEngine::insert_object`] primitives as every other update,
    /// so index and store cannot diverge; the new region is sampled (and
    /// can fail) *before* the old object is touched, and a failed
    /// re-insert restores the removed object.
    pub fn move_object(
        &mut self,
        id: ObjectId,
        center: Point2,
        floor: Floor,
        seed: u64,
    ) -> Result<(), EngineError> {
        let old = self.store.get(id)?;
        let radius = old.region.radius;
        let instances = old.len();
        let sampler = GaussianSampler {
            instances,
            ..GaussianSampler::default()
        };
        let mut rng = StdRng::seed_from_u64(seed ^ id.0);
        let object = sampler.sample(id, center, floor, radius, &self.space, &mut rng)?;
        let old = self.remove_object(id)?;
        if let Err(e) = self.insert_object(object) {
            self.insert_object(old)?;
            return Err(e);
        }
        Ok(())
    }

    // ---- queries (§IV) -------------------------------------------------------
    //
    // Stability contract: these convenience methods are kept indefinitely
    // as thin delegations onto a default snapshot — existing callers never
    // need to name `Query` or `Outcome`. New code (and anything issuing
    // several queries against one consistent view) should prefer
    // [`IndoorEngine::snapshot`] + [`EngineSnapshot::execute`] /
    // [`EngineSnapshot::execute_batch`].

    /// `iRQ(q, r)` with the engine's default options.
    pub fn range_query(&self, q: IndoorPoint, r: f64) -> Result<RangeResult, EngineError> {
        self.range_query_with(q, r, &self.query_options())
    }

    /// `iRQ(q, r)` with explicit options (ablations, exact refinement…).
    pub fn range_query_with(
        &self,
        q: IndoorPoint,
        r: f64,
        options: &QueryOptions,
    ) -> Result<RangeResult, EngineError> {
        Ok(self
            .snapshot_with(*options)
            .execute(&Query::Range { q, r })?
            .into_range()
            .expect("range query yields a range outcome"))
    }

    /// `ikNNQ(q, k)` with the engine's default options.
    pub fn knn(&self, q: IndoorPoint, k: usize) -> Result<KnnResult, EngineError> {
        self.knn_with(q, k, &self.query_options())
    }

    /// `ikNNQ(q, k)` with explicit options.
    pub fn knn_with(
        &self,
        q: IndoorPoint,
        k: usize,
        options: &QueryOptions,
    ) -> Result<KnnResult, EngineError> {
        Ok(self
            .snapshot_with(*options)
            .execute(&Query::Knn { q, k })?
            .into_knn()
            .expect("kNN query yields a kNN outcome"))
    }

    /// Point-to-point indoor distance `|q,p|_I`.
    pub fn indoor_distance(&self, q: IndoorPoint, p: IndoorPoint) -> Result<f64, EngineError> {
        Ok(self
            .snapshot()
            .execute(&Query::Distance { q, p })?
            .into_distance()
            .expect("distance query yields a distance outcome")
            .distance)
    }

    /// Shortest indoor path `q ⇝δ p`: length plus the door sequence.
    pub fn shortest_path(
        &self,
        q: IndoorPoint,
        p: IndoorPoint,
    ) -> Result<Option<(f64, Vec<DoorId>)>, EngineError> {
        Ok(self
            .snapshot()
            .execute(&Query::Path { q, p })?
            .into_path()
            .expect("path query yields a path outcome")
            .path)
    }

    // ---- topology updates (§III-C.1) --------------------------------------------

    /// Closes a door and updates the index layers.
    pub fn close_door(&mut self, d: DoorId) -> Result<(), EngineError> {
        let ev = self.space.close_door(d)?;
        self.apply(&[ev])
    }

    /// Re-opens a door.
    pub fn open_door(&mut self, d: DoorId) -> Result<(), EngineError> {
        let ev = self.space.open_door(d)?;
        self.apply(&[ev])
    }

    /// Adds a temporary door between two partitions.
    pub fn insert_door(
        &mut self,
        a: PartitionId,
        b: PartitionId,
        position: Point2,
        floor: Floor,
        direction: Direction,
    ) -> Result<DoorId, EngineError> {
        let (id, ev) = self.space.insert_door(a, b, position, floor, direction)?;
        self.apply(&[ev])?;
        Ok(id)
    }

    /// Inserts a partition with its doors.
    pub fn insert_partition(
        &mut self,
        spec: PartitionSpec,
    ) -> Result<(PartitionId, Vec<DoorId>), EngineError> {
        let (pid, doors, events) = self.space.insert_partition(spec)?;
        self.apply(&events)?;
        Ok((pid, doors))
    }

    /// Deletes a partition and its doors.
    pub fn delete_partition(&mut self, pid: PartitionId) -> Result<(), EngineError> {
        let events = self.space.delete_partition(pid)?;
        self.apply(&events)
    }

    /// Splits a rectangular partition with a sliding wall.
    pub fn split_partition(
        &mut self,
        pid: PartitionId,
        line: SplitLine,
        connecting_door: Option<Point2>,
    ) -> Result<[PartitionId; 2], EngineError> {
        let (halves, events) = self.space.split_partition(pid, line, connecting_door)?;
        self.apply(&events)?;
        Ok(halves)
    }

    /// Merges two partitions (dismounts a sliding wall).
    pub fn merge_partitions(
        &mut self,
        a: PartitionId,
        b: PartitionId,
    ) -> Result<PartitionId, EngineError> {
        let (merged, events) = self.space.merge_partitions(a, b)?;
        self.apply(&events)?;
        Ok(merged)
    }

    fn apply(&mut self, events: &[TopologyEvent]) -> Result<(), EngineError> {
        for ev in events {
            self.index.apply_topology(&self.space, &self.store, ev)?;
        }
        Ok(())
    }

    /// Validates cross-layer invariants (test/diagnostic support).
    pub fn validate(&self) {
        self.index.validate();
        self.index
            .check_fresh(&self.space)
            .expect("index is current with the space");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::Rect2;
    use idq_model::FloorPlanBuilder;

    fn three_rooms() -> IndoorSpace {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(r1, r2, Point2::new(20.0, 5.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn end_to_end_insert_query_remove() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        let o2 = e
            .insert_object_at(Point2::new(25.0, 5.0), 0, 1.0, 8, 2)
            .unwrap();
        e.validate();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let knn = e.knn(q, 2).unwrap();
        assert_eq!(knn.results.len(), 2);
        assert_eq!(knn.results[0].object, o1);
        assert_eq!(knn.results[1].object, o2);
        let within = e.range_query(q, 16.0).unwrap();
        assert_eq!(within.results.len(), 1);
        e.remove_object(o1).unwrap();
        let knn = e.knn(q, 2).unwrap();
        assert_eq!(knn.results.len(), 1);
        assert_eq!(knn.results[0].object, o2);
        e.validate();
    }

    #[test]
    fn move_object_changes_ranking() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        let o2 = e
            .insert_object_at(Point2::new(25.0, 5.0), 0, 1.0, 8, 2)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        assert_eq!(e.knn(q, 1).unwrap().results[0].object, o1);
        // Move o1 to the far room and o2 near the query.
        e.move_object(o1, Point2::new(28.0, 5.0), 0, 9).unwrap();
        e.move_object(o2, Point2::new(12.0, 5.0), 0, 9).unwrap();
        assert_eq!(e.knn(q, 1).unwrap().results[0].object, o2);
        e.validate();
    }

    #[test]
    fn door_closure_reroutes_distance() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let p = IndoorPoint::new(Point2::new(28.0, 5.0), 0);
        let before = e.indoor_distance(q, p).unwrap();
        assert!(before.is_finite());
        let (_, doors) = e.shortest_path(q, p).unwrap().unwrap();
        assert_eq!(doors.len(), 2);
        e.close_door(doors[1]).unwrap();
        assert!(e.indoor_distance(q, p).unwrap().is_infinite());
        e.open_door(doors[1]).unwrap();
        assert!((e.indoor_distance(q, p).unwrap() - before).abs() < 1e-9);
        e.validate();
    }

    #[test]
    fn split_and_merge_keep_queries_working() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 3)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mid = e
            .space()
            .partition_at(IndoorPoint::new(Point2::new(15.0, 2.0), 0))
            .unwrap();
        let halves = e
            .split_partition(mid, SplitLine::AtX(15.5), Some(Point2::new(15.5, 5.0)))
            .unwrap();
        e.validate();
        let hits = e.range_query(q, 30.0).unwrap();
        assert!(hits.results.iter().any(|h| h.object == o));
        let merged = e.merge_partitions(halves[0], halves[1]).unwrap();
        e.validate();
        assert!(e.space().partition(merged).is_ok());
        let hits = e.range_query(q, 30.0).unwrap();
        assert!(hits.results.iter().any(|h| h.object == o));
    }

    #[test]
    fn duplicate_insert_is_rejected_consistently() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let id = e
            .insert_object_at(Point2::new(5.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        let dup = UncertainObject::point_object(id, IndoorPoint::new(Point2::new(5.0, 5.0), 0));
        assert!(e.insert_object(dup).is_err());
        // The failed insert left no trace: cross-layer invariants hold and
        // the original object still answers queries.
        e.validate();
        let q = IndoorPoint::new(Point2::new(8.0, 5.0), 0);
        assert_eq!(e.knn(q, 1).unwrap().results[0].object, id);
    }

    #[test]
    fn failed_store_insert_rolls_the_index_back() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let id = e
            .insert_object_at(Point2::new(5.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        // Force the index-ok/store-fail path directly: remove the object
        // from the index only, so the index insert succeeds while the
        // store still holds the id.
        // (Reaching inside is deliberate — this is the rollback seam.)
        let obj = e.store().get(id).unwrap().clone();
        e.index.remove_object(id).unwrap();
        assert!(e.insert_object(obj).is_err(), "store rejects the duplicate");
        // The rollback removed the index entry again; re-registering the
        // object restores full consistency.
        let obj = e.store.remove(id).unwrap();
        e.insert_object(obj).unwrap();
        e.validate();
    }

    #[test]
    fn failed_move_restores_the_original_object() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let id = e
            .insert_object_at(Point2::new(5.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        // Moving to a position outside every partition fails in sampling,
        // before the old object is touched.
        assert!(e.move_object(id, Point2::new(-50.0, -50.0), 0, 9).is_err());
        e.validate();
        assert!(e.store().contains(id));
        let q = IndoorPoint::new(Point2::new(8.0, 5.0), 0);
        assert_eq!(e.knn(q, 1).unwrap().results[0].object, id);
    }
}
