//! The engine: space + objects + index, kept consistent — and served
//! concurrently.
//!
//! [`IndoorEngine`] is the **single writer** of an MVCC service: its state
//! lives in an immutable, `Arc`-shared [`EngineState`] and every
//! successful [`IndoorEngine::apply`] / [`IndoorEngine::apply_batch`]
//! commits by building the *next* state — copy-on-write of the layers the
//! batch touched, reusing the validate→stage→commit split — and swapping
//! it into the service cell under its new epoch. Reads go through owned
//! [`Snapshot`]s pinned to a version ([`IndoorEngine::snapshot`], or any
//! thread via [`IndoorEngine::service`]); standing queries subscribe
//! through [`crate::IndoorService::subscribe`] and are fed each commit's
//! [`UpdateReport`]. Failure atomicity is structural: an error anywhere
//! in a batch drops the in-flight copy, leaving the committed version
//! untouched.

use crate::error::EngineError;
use crate::service::{IndoorService, Shared};
use crate::snapshot::Snapshot;
use crate::state::EngineState;
use crate::update::{DeltaBuilder, Update, UpdateOutcome, UpdateReport, UpdateStats};
use idq_geom::{Circle, Mbr3, Point2};
use idq_index::{CompositeIndex, IndexConfig, UnitId};
use idq_model::IndoorPoint;
use idq_model::{
    Direction, DoorId, Floor, IndoorSpace, PartitionId, PartitionSpec, SplitLine, TopologyEvent,
};
use idq_objects::{GaussianSampler, ObjectError, ObjectId, ObjectStore, UncertainObject};
use idq_query::{KnnResult, Outcome, Query, QueryOptions, RangeResult};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Engine configuration: index layout plus default query options.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineConfig {
    /// Composite-index parameters (fanout, `T_shape`, bulk load).
    pub index: IndexConfig,
    /// Default query options (ablation switches, subgraph slack).
    pub query: QueryOptions,
}

/// Planar side length (metres) of the spatial cells `apply_batch` groups
/// position updates by: `(floor, ⌊x/cell⌋, ⌊y/cell⌋)` of the new region
/// centre is a constant-time proxy for the touched partition (cells are
/// sized to the §V-A mall generator's room scale), so updates landing in
/// the same partition share one footprint traversal without paying a
/// point-location query per update.
const GROUP_CELL_M: f64 = 60.0;

/// Sampling parameters of a deferred Gaussian draw (resolved during
/// validation, executed during staging with an index-derived partition
/// hint).
#[derive(Debug)]
struct SampleSpec {
    id: ObjectId,
    center: Point2,
    floor: Floor,
    radius: f64,
    instances: usize,
    seed: u64,
}

/// A validated position update: existence and duplicate checks done, ids
/// allocated, sampling parameters resolved — nothing mutated, nothing
/// sampled yet. Crucially the write MBR is already known (a sampled
/// object's instances are truncated to its region, so its footprint is the
/// region's bounding box), which is what lets a run compute all footprints
/// first — shared traversals, grouped by touched partition — and then feed
/// each footprint's partitions back to the sampler as a point-location
/// hint.
#[derive(Debug)]
enum Intent {
    /// Insert this fully-formed object.
    InsertReady(Box<UncertainObject>),
    /// Sample a fresh object, then insert it.
    SampleInsert(SampleSpec),
    /// Sample the moved object's new state, then replace the old one
    /// (currently filed under the carried floor).
    SampleMove(SampleSpec, Floor),
    /// Remove this object (filed under the carried floor).
    Remove(ObjectId, Floor),
}

impl Intent {
    /// The MBR this intent writes into the index, if it writes one.
    fn write_mbr(&self, space: &IndoorSpace) -> Option<Mbr3> {
        match self {
            Intent::InsertReady(o) => Some(Mbr3::planar(
                o.footprint_rect(),
                o.floor,
                space.elevation(o.floor),
            )),
            Intent::SampleInsert(s) | Intent::SampleMove(s, _) => {
                let rect = Circle::new(s.center, s.radius).bbox();
                Some(Mbr3::planar(rect, s.floor, space.elevation(s.floor)))
            }
            Intent::Remove(..) => None,
        }
    }

    /// Grouping key: (floor, partition-scale cell) of the write centre.
    fn group_key(&self) -> Option<(Floor, i64, i64)> {
        let (center, floor) = match self {
            Intent::InsertReady(o) => (o.region.center, o.floor),
            Intent::SampleInsert(s) | Intent::SampleMove(s, _) => (s.center, s.floor),
            Intent::Remove(..) => return None,
        };
        let cx = (center.x / GROUP_CELL_M).floor() as i64;
        let cy = (center.y / GROUP_CELL_M).floor() as i64;
        Some((floor, cx, cy))
    }
}

/// What an object carried over from earlier updates of the same run —
/// sequential semantics without splitting the run on repeated ids.
#[derive(Clone, Copy, Debug)]
enum PendingState {
    /// The object will be live with this region radius / instance count,
    /// filed under this floor's shard.
    Live {
        radius: f64,
        instances: usize,
        floor: Floor,
    },
    /// The object will be gone.
    Removed,
}

/// A staged position update: validated, footprinted and sampled — the
/// commit can no longer fail on user input.
#[derive(Debug)]
enum PreparedOp {
    /// Insert this object under the prepared footprint.
    Insert(Box<UncertainObject>, Vec<UnitId>, Mbr3),
    /// Replace the same-id object under the prepared footprint; the
    /// carried floor is where the object currently lives, so the commit
    /// routes straight to the touched shard(s) without probing.
    Move(Box<UncertainObject>, Vec<UnitId>, Mbr3, Floor),
    /// Remove this object from the carried floor's shards.
    Remove(ObjectId, Floor),
}

/// Accumulators of one in-flight `apply_batch` transaction.
#[derive(Debug, Default)]
struct BatchState {
    outcomes: Vec<UpdateOutcome>,
    delta: DeltaBuilder,
    stats: UpdateStats,
    /// Floors whose shards the batch's object ops landed in — reported as
    /// `UpdateStats::shards_touched`.
    floors: BTreeSet<Floor>,
}

/// The copy-on-write working state of one write transaction.
///
/// Begins as cheap `Arc` clones of the committed version's layers. The
/// layers themselves are **sharded by floor** (`ObjectStore` into
/// `StoreShard`s, the index's object tier into `FloorShard`s with
/// `Arc`-per-bucket, the index's geometry tiers each behind their own
/// `Arc`), so "cloning a layer" here is a handful of pointer bumps: the
/// first mutation of a *shard* is what deep-copies it (`Arc::make_mut`
/// inside the layer — the committed version always holds a second
/// reference), and everything the batch never touches is shared
/// structurally with the committed version. A pure object batch
/// deep-copies exactly the floor shards its updates land in plus the
/// buckets whose membership changes; a batch containing topology updates
/// degrades to also copying the space and the index's geometry tiers. On
/// success the `Arc`s become the next [`EngineState`]; on error the
/// transaction is dropped and the committed version was never touched —
/// rollback is structural, not compensating.
#[derive(Debug)]
struct Txn {
    space: Arc<IndoorSpace>,
    store: Arc<ObjectStore>,
    index: Arc<CompositeIndex>,
    max_radius: f64,
    /// Whether the space layer was copy-on-written (i.e. the batch
    /// contained topology updates) — reported as `UpdateStats::checkpointed`.
    space_cloned: bool,
}

impl Txn {
    fn begin(state: &EngineState) -> Self {
        Txn {
            space: Arc::clone(&state.space),
            store: Arc::clone(&state.store),
            index: Arc::clone(&state.index),
            max_radius: state.max_radius,
            space_cloned: false,
        }
    }

    /// The forward pass of one batch: alternating runs of position updates
    /// (prepared, then committed with grouped footprints) and topology
    /// updates (applied with one deferred skeleton repair per run).
    fn run_batch(&mut self, updates: &[Update], state: &mut BatchState) -> Result<(), EngineError> {
        state.stats.updates = updates.len();
        let mut i = 0;
        while i < updates.len() {
            if updates[i].is_topology() {
                let mut skeleton_dirty = false;
                while i < updates.len() && updates[i].is_topology() {
                    let outcome = self.apply_topology_update(&updates[i], &mut skeleton_dirty)?;
                    state.delta.record(&outcome);
                    state.outcomes.push(outcome);
                    i += 1;
                }
                if skeleton_dirty {
                    Arc::make_mut(&mut self.index).rebuild_skeleton(&self.space);
                    state.stats.skeleton_rebuilds += 1;
                }
            } else {
                // One run of position updates: validate every update first
                // (duplicate/existence checks against the store plus the
                // run's own pending effects), stage the run (shared
                // footprint traversals, hint-assisted sampling — all
                // remaining fallible work, still nothing committed), then
                // apply in input order.
                let mut intents: Vec<Intent> = Vec::new();
                let mut pending: HashMap<ObjectId, PendingState> = HashMap::new();
                while i < updates.len() && !updates[i].is_topology() {
                    intents.push(self.prepare_intent(&updates[i], &mut pending)?);
                    state.stats.position_updates += 1;
                    i += 1;
                }
                let ops = self.stage_run(intents, &mut state.stats)?;
                for op in ops {
                    let outcome = self.apply_object_op(op, &mut state.floors)?;
                    state.delta.record(&outcome);
                    state.outcomes.push(outcome);
                }
            }
        }
        Ok(())
    }

    /// Validates one position [`Update`] against the store *and* the run's
    /// pending effects (so a run may touch the same object repeatedly with
    /// sequential semantics), allocating ids and resolving sampling
    /// parameters. Id allocation lands on the transaction's store copy, so
    /// a failed batch leaks nothing.
    fn prepare_intent(
        &mut self,
        update: &Update,
        pending: &mut HashMap<ObjectId, PendingState>,
    ) -> Result<Intent, EngineError> {
        match update {
            Update::InsertObject(object) => {
                let id = object.id;
                let exists = match pending.get(&id) {
                    Some(PendingState::Live { .. }) => true,
                    Some(PendingState::Removed) => false,
                    None => self.store.contains(id),
                };
                if exists {
                    return Err(ObjectError::DuplicateObject(id).into());
                }
                // A fully-formed insert is the one object path with no
                // sampling step to reject a floor the space does not
                // cover — and an out-of-space floor would permanently
                // grow the per-floor shard vectors.
                if object.floor as usize >= self.space.num_floors() {
                    return Err(EngineError::FloorOutOfSpace {
                        floor: object.floor,
                        num_floors: self.space.num_floors(),
                    });
                }
                // The insert itself is deferred, so reserve the external id
                // now: a later `InsertObjectAt` in this run must allocate
                // past it, exactly as sequential application would after
                // the insert landed.
                Arc::make_mut(&mut self.store).reserve_id(id);
                pending.insert(
                    id,
                    PendingState::Live {
                        radius: object.region.radius,
                        instances: object.len(),
                        floor: object.floor,
                    },
                );
                Ok(Intent::InsertReady(object.clone()))
            }
            Update::InsertObjectAt {
                center,
                floor,
                radius,
                instances,
                seed,
            } => {
                let id = Arc::make_mut(&mut self.store).allocate_id();
                let instances = (*instances).max(1);
                pending.insert(
                    id,
                    PendingState::Live {
                        radius: *radius,
                        instances,
                        floor: *floor,
                    },
                );
                Ok(Intent::SampleInsert(SampleSpec {
                    id,
                    center: *center,
                    floor: *floor,
                    radius: *radius,
                    instances,
                    seed: *seed,
                }))
            }
            Update::MoveObject {
                id,
                center,
                floor,
                seed,
            } => {
                let (radius, instances, old_floor) = match pending.get(id) {
                    Some(PendingState::Removed) => {
                        return Err(ObjectError::UnknownObject(*id).into())
                    }
                    Some(PendingState::Live {
                        radius,
                        instances,
                        floor,
                    }) => (*radius, *instances, *floor),
                    None => {
                        let old = self.store.get(*id)?;
                        (old.region.radius, old.len(), old.floor)
                    }
                };
                pending.insert(
                    *id,
                    PendingState::Live {
                        radius,
                        instances,
                        floor: *floor,
                    },
                );
                Ok(Intent::SampleMove(
                    SampleSpec {
                        id: *id,
                        center: *center,
                        floor: *floor,
                        radius,
                        instances,
                        seed: *seed,
                    },
                    old_floor,
                ))
            }
            Update::RemoveObject(id) => {
                let old_floor = match pending.get(id) {
                    Some(PendingState::Removed) => {
                        return Err(ObjectError::UnknownObject(*id).into())
                    }
                    Some(PendingState::Live { floor, .. }) => *floor,
                    None => self.store.get(*id)?.floor,
                };
                pending.insert(*id, PendingState::Removed);
                Ok(Intent::Remove(*id, old_floor))
            }
            _ => unreachable!("prepare_intent only sees position updates"),
        }
    }

    /// Stages a validated run: groups writes by touched partition, runs
    /// one footprint traversal per group, then executes the deferred
    /// Gaussian draws with each footprint's partitions as the
    /// point-location hint (identical results to full point location, a
    /// fraction of the cost). Sampling can fail — a centre outside every
    /// partition — but nothing is applied until every op is staged.
    fn stage_run(
        &self,
        intents: Vec<Intent>,
        stats: &mut UpdateStats,
    ) -> Result<Vec<PreparedOp>, EngineError> {
        // Sort write indices by (floor, cell): each contiguous key run is
        // one group sharing a traversal.
        let mut keyed: Vec<((Floor, i64, i64), usize)> = intents
            .iter()
            .enumerate()
            .filter_map(|(k, intent)| intent.group_key().map(|key| (key, k)))
            .collect();
        keyed.sort_unstable();
        let mut footprints: Vec<Option<(Vec<UnitId>, Mbr3)>> = Vec::new();
        footprints.resize_with(intents.len(), || None);
        let mut start = 0;
        while start < keyed.len() {
            let key = keyed[start].0;
            let mut end = start + 1;
            while end < keyed.len() && keyed[end].0 == key {
                end += 1;
            }
            let members = &keyed[start..end];
            let mbrs: Vec<Mbr3> = members
                .iter()
                .map(|&(_, k)| {
                    intents[k]
                        .write_mbr(&self.space)
                        .expect("grouped intents write an MBR")
                })
                .collect();
            let grouped = self.index.unit_footprints_grouped(&mbrs);
            stats.footprint_searches += 1;
            for ((&(_, k), units), mbr) in members.iter().zip(grouped).zip(mbrs) {
                footprints[k] = Some((units, mbr));
            }
            start = end;
        }
        intents
            .into_iter()
            .zip(footprints)
            .map(|(intent, footprint)| match intent {
                Intent::InsertReady(object) => {
                    let (units, mbr) = footprint.expect("writes carry a footprint");
                    Ok(PreparedOp::Insert(object, units, mbr))
                }
                Intent::SampleInsert(spec) => {
                    let (units, mbr) = footprint.expect("writes carry a footprint");
                    let object = self.sample_spec(&spec, &units)?;
                    Ok(PreparedOp::Insert(Box::new(object), units, mbr))
                }
                Intent::SampleMove(spec, old_floor) => {
                    let (units, mbr) = footprint.expect("writes carry a footprint");
                    let object = self.sample_spec(&spec, &units)?;
                    Ok(PreparedOp::Move(Box::new(object), units, mbr, old_floor))
                }
                Intent::Remove(id, floor) => Ok(PreparedOp::Remove(id, floor)),
            })
            .collect()
    }

    /// Executes one deferred Gaussian draw, point-locating against the
    /// partitions owning the footprint's units (a superset of every
    /// partition overlapping the region, so the draw is exact).
    fn sample_spec(
        &self,
        spec: &SampleSpec,
        units: &[UnitId],
    ) -> Result<UncertainObject, EngineError> {
        let mut hint: Vec<PartitionId> = units
            .iter()
            .filter_map(|&u| self.index.units().partition_of(u))
            .collect();
        hint.sort_unstable();
        hint.dedup();
        let sampler = GaussianSampler {
            instances: spec.instances,
            ..GaussianSampler::default()
        };
        let mut rng = StdRng::seed_from_u64(spec.seed ^ spec.id.0);
        Ok(sampler.sample_with_hint(
            spec.id,
            spec.center,
            spec.floor,
            spec.radius,
            &self.space,
            &hint,
            &mut rng,
        )?)
    }

    /// Applies one staged op to the transaction's store + index copies,
    /// recording the floor shard(s) it lands in (the floors carried on
    /// the staged op feed `UpdateStats::shards_touched`; the layers route
    /// by their O(1) directories). The `Arc::make_mut`s on the layer
    /// handles cost a few pointer bumps — the deep copies happen *inside*
    /// the layers, per touched floor shard and changed bucket. By
    /// construction (validation + staging) these layer operations cannot
    /// fail on user input; an error simply aborts the transaction with the
    /// committed version untouched.
    fn apply_object_op(
        &mut self,
        op: PreparedOp,
        floors: &mut BTreeSet<Floor>,
    ) -> Result<UpdateOutcome, EngineError> {
        match op {
            PreparedOp::Insert(object, units, mbr) => {
                let id = object.id;
                let radius = object.region.radius;
                floors.insert(object.floor);
                Arc::make_mut(&mut self.index).insert_object_prepared(id, units, mbr)?;
                Arc::make_mut(&mut self.store).insert(*object)?;
                self.max_radius = self.max_radius.max(radius);
                Ok(UpdateOutcome::ObjectInserted(id))
            }
            PreparedOp::Move(object, units, mbr, old_floor) => {
                let id = object.id;
                // A cross-floor move touches the old floor's shard too.
                floors.insert(old_floor);
                floors.insert(object.floor);
                Arc::make_mut(&mut self.store).replace_discarding(*object)?;
                Arc::make_mut(&mut self.index).update_object_prepared(id, units, mbr)?;
                Ok(UpdateOutcome::ObjectMoved(id))
            }
            PreparedOp::Remove(id, floor) => {
                floors.insert(floor);
                Arc::make_mut(&mut self.index).remove_object(id)?;
                Arc::make_mut(&mut self.store).discard(id)?;
                Ok(UpdateOutcome::ObjectRemoved(id))
            }
        }
    }

    /// Applies one topology [`Update`]: the space-layer operation (on the
    /// transaction's space copy), then its events through the index with
    /// the skeleton repair deferred into `skeleton_dirty` (callers
    /// coalesce repairs across a run).
    fn apply_topology_update(
        &mut self,
        update: &Update,
        skeleton_dirty: &mut bool,
    ) -> Result<UpdateOutcome, EngineError> {
        self.space_cloned = true;
        match update {
            Update::OpenDoor(d) => {
                let ev = Arc::make_mut(&mut self.space).open_door(*d)?;
                self.absorb_events(&[ev], skeleton_dirty)?;
                Ok(UpdateOutcome::DoorOpened(*d))
            }
            Update::CloseDoor(d) => {
                let ev = Arc::make_mut(&mut self.space).close_door(*d)?;
                self.absorb_events(&[ev], skeleton_dirty)?;
                Ok(UpdateOutcome::DoorClosed(*d))
            }
            Update::InsertDoor {
                a,
                b,
                position,
                floor,
                direction,
            } => {
                let (id, ev) = Arc::make_mut(&mut self.space)
                    .insert_door(*a, *b, *position, *floor, *direction)?;
                self.absorb_events(&[ev], skeleton_dirty)?;
                Ok(UpdateOutcome::DoorInserted(id))
            }
            Update::InsertPartition(spec) => {
                let (partition, doors, events) =
                    Arc::make_mut(&mut self.space).insert_partition(spec.clone())?;
                self.absorb_events(&events, skeleton_dirty)?;
                Ok(UpdateOutcome::PartitionInserted { partition, doors })
            }
            Update::DeletePartition(p) => {
                let events = Arc::make_mut(&mut self.space).delete_partition(*p)?;
                self.absorb_events(&events, skeleton_dirty)?;
                Ok(UpdateOutcome::PartitionDeleted(*p))
            }
            Update::SplitPartition {
                partition,
                line,
                connecting_door,
            } => {
                let (halves, events) = Arc::make_mut(&mut self.space).split_partition(
                    *partition,
                    *line,
                    *connecting_door,
                )?;
                self.absorb_events(&events, skeleton_dirty)?;
                Ok(UpdateOutcome::PartitionSplit {
                    old: *partition,
                    halves,
                })
            }
            Update::MergePartitions(a, b) => {
                let (merged, events) = Arc::make_mut(&mut self.space).merge_partitions(*a, *b)?;
                self.absorb_events(&events, skeleton_dirty)?;
                Ok(UpdateOutcome::PartitionsMerged { merged })
            }
            _ => unreachable!("apply_topology_update only sees topology updates"),
        }
    }

    fn absorb_events(
        &mut self,
        events: &[TopologyEvent],
        skeleton_dirty: &mut bool,
    ) -> Result<(), EngineError> {
        let index = Arc::make_mut(&mut self.index);
        for ev in events {
            *skeleton_dirty |= index.apply_topology_deferred(&self.space, &self.store, ev)?;
        }
        Ok(())
    }
}

/// The integrated engine: the single writer of one consistent, versioned
/// indoor world.
///
/// The engine owns the write side; reads and subscriptions go through the
/// [`IndoorService`] handle ([`IndoorEngine::service`]), which any number
/// of threads share. Dropping the engine retires the writer: services
/// keep answering on the final version, subscriptions see their stream
/// end.
#[derive(Debug)]
pub struct IndoorEngine {
    shared: Arc<Shared>,
    /// The writer's own pin of the latest committed version (always equal
    /// to the service cell's — the engine is the only publisher).
    state: Arc<EngineState>,
}

impl IndoorEngine {
    /// Builds an engine over a space with no objects yet.
    pub fn new(space: IndoorSpace, config: EngineConfig) -> Result<Self, EngineError> {
        Self::with_objects(space, ObjectStore::new(), config)
    }

    /// Builds an engine over a space and an existing object population.
    pub fn with_objects(
        space: IndoorSpace,
        store: ObjectStore,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        let index = CompositeIndex::build(&space, &store, config.index)?;
        let max_radius = store.iter().map(|o| o.region.radius).fold(0.0f64, f64::max);
        let state = Arc::new(EngineState {
            space: Arc::new(space),
            store: Arc::new(store),
            index: Arc::new(index),
            options: config.query,
            max_radius,
            epoch: 0,
        });
        Ok(IndoorEngine {
            shared: Arc::new(Shared::new(Arc::clone(&state))),
            state,
        })
    }

    // ---- accessors -------------------------------------------------------

    /// The indoor space.
    pub fn space(&self) -> &IndoorSpace {
        &self.state.space
    }

    /// The object population.
    pub fn store(&self) -> &ObjectStore {
        &self.state.store
    }

    /// The composite index.
    pub fn index(&self) -> &CompositeIndex {
        &self.state.index
    }

    /// The engine's write epoch: bumped once per successful
    /// [`IndoorEngine::apply`] or [`IndoorEngine::apply_batch`] (a batch is
    /// one transaction, hence one bump). Two snapshots with equal
    /// [`Snapshot::version`] saw the identical world.
    pub fn epoch(&self) -> u64 {
        self.state.epoch
    }

    /// The effective default query options (slack widened to the largest
    /// uncertainty region inserted so far).
    pub fn query_options(&self) -> QueryOptions {
        self.state.effective_options()
    }

    // ---- the concurrent service surface ---------------------------------

    /// A cloneable, `Send + Sync` handle for reader threads: snapshots,
    /// query sessions and standing-query subscriptions, all pinned to
    /// committed versions while this engine keeps writing.
    pub fn service(&self) -> IndoorService {
        IndoorService::new(Arc::clone(&self.shared))
    }

    // ---- snapshots (sessions over a consistent read view) ----------------

    /// An owned snapshot pinned to the latest committed version, using the
    /// engine's effective default options. The snapshot is `Clone + Send +
    /// Sync`: hand it to any thread, it keeps reading this version no
    /// matter what commits afterwards.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::from_state(Arc::clone(&self.state), self.query_options())
    }

    /// A pinned snapshot with explicit query options (ablations, exact
    /// refinement…).
    pub fn snapshot_with(&self, options: QueryOptions) -> Snapshot {
        Snapshot::from_state(Arc::clone(&self.state), options)
    }

    /// Evaluates one typed [`Query`] on a fresh default snapshot.
    pub fn execute(&self, query: &Query) -> Result<Outcome, EngineError> {
        self.snapshot().execute(query)
    }

    /// Evaluates a batch of typed [`Query`]s on a fresh default snapshot,
    /// reusing one evaluation context per (query point, floor) group.
    pub fn execute_batch(&self, queries: &[Query]) -> Result<Vec<Outcome>, EngineError> {
        self.snapshot().execute_batch(queries)
    }

    // ---- typed updates (§III-C) ------------------------------------------

    /// Applies one typed [`Update`].
    ///
    /// Atomic: on error nothing was committed — the update ran on a
    /// copy-on-write transaction that is simply dropped. A success bumps
    /// the [`IndoorEngine::epoch`], publishes the new version to every
    /// service handle and notifies subscriptions.
    ///
    /// **Cost note:** under MVCC every commit copy-on-writes what it
    /// touches — which, with the state sharded by floor, is the store and
    /// o-table slice of the touched floor(s) plus the buckets whose
    /// membership changes, never the whole object population. A
    /// single-update commit therefore costs O(objects on its floor)
    /// rather than O(all objects). Batching still wins (shared footprint
    /// traversals, one shard copy amortized over the whole batch instead
    /// of one per update): on the `ingest` benchmark workload,
    /// [`IndoorEngine::apply_batch`] sustains hundreds of thousands of
    /// updates/s, while per-update `apply` runs at one floor-shard copy
    /// per call.
    pub fn apply(&mut self, update: Update) -> Result<UpdateOutcome, EngineError> {
        let report = self.apply_batch(std::slice::from_ref(&update))?;
        Ok(report
            .outcomes
            .into_iter()
            .next()
            .expect("one update, one outcome"))
    }

    /// Applies a stream of typed [`Update`]s as **one atomic transaction**:
    /// either every update commits (one epoch bump, one [`UpdateReport`])
    /// or, on the first failure, nothing does — the batch runs on a
    /// copy-on-write transaction over the committed version's layers, so a
    /// failure drops the copy and the committed version was never touched
    /// (no undo log, no compensation).
    ///
    /// The batch is also **amortized**: position updates are grouped by
    /// touched partition so the composite index runs one footprint
    /// traversal per group instead of one per update, and a run of
    /// topology updates coalesces its skeleton repairs into a single
    /// rebuild at the end of the run. Results are equivalent to applying
    /// the updates one at a time in order (same objects, same ids, same
    /// query answers) — only the maintenance cost differs.
    ///
    /// A successful non-empty batch commits via the epoch-stamped atomic
    /// swap: snapshots pinned to older versions are unaffected, new
    /// snapshots see the new version, and every live subscription receives
    /// the report.
    pub fn apply_batch(&mut self, updates: &[Update]) -> Result<UpdateReport, EngineError> {
        let mut txn = Txn::begin(&self.state);
        let mut batch = BatchState {
            outcomes: Vec::with_capacity(updates.len()),
            ..BatchState::default()
        };
        txn.run_batch(updates, &mut batch)?;
        batch.stats.checkpointed = txn.space_cloned;
        batch.stats.shards_touched = batch.floors.len();
        if updates.is_empty() {
            // A committed no-op: nothing to publish, epoch unchanged.
            return Ok(UpdateReport {
                outcomes: batch.outcomes,
                delta: batch.delta.finish(),
                epoch: self.state.epoch,
                stats: batch.stats,
            });
        }
        Ok(self.commit(txn, batch))
    }

    /// Publishes a completed transaction as the next version: builds the
    /// epoch-stamped [`EngineState`], swaps it into the service cell, and
    /// broadcasts the report to subscriptions (outside every lock that
    /// readers take across work).
    fn commit(&mut self, txn: Txn, batch: BatchState) -> UpdateReport {
        let epoch = self.state.epoch + 1;
        let next = Arc::new(EngineState {
            space: txn.space,
            store: txn.store,
            index: txn.index,
            options: self.state.options,
            max_radius: txn.max_radius,
            epoch,
        });
        self.state = Arc::clone(&next);
        self.shared.publish(next);
        let report = UpdateReport {
            outcomes: batch.outcomes,
            delta: batch.delta.finish(),
            epoch,
            stats: batch.stats,
        };
        self.shared.broadcast(&report, &self.snapshot());
        report
    }

    // ---- object management (§III-C.2) ------------------------------------
    //
    // Stability contract (mirroring the read side): these convenience
    // methods are kept indefinitely as thin delegations onto
    // [`IndoorEngine::apply`] — existing callers never need to name
    // [`Update`]. New code, and anything issuing several updates that must
    // commit or fail together, should prefer typed updates and
    // [`IndoorEngine::apply_batch`] — under MVCC each of these calls is
    // one commit and pays the copy-on-write of the floor shards it
    // touches (see the cost note on [`IndoorEngine::apply`]), so update
    // streams belong in batches.

    /// Inserts a fully-formed uncertain object.
    pub fn insert_object(&mut self, object: UncertainObject) -> Result<(), EngineError> {
        self.apply(Update::InsertObject(Box::new(object)))
            .map(|_| ())
    }

    /// Samples and inserts an object: Gaussian instances in a circular
    /// region, per the paper's object model (§V-A).
    pub fn insert_object_at(
        &mut self,
        center: Point2,
        floor: Floor,
        radius: f64,
        instances: usize,
        seed: u64,
    ) -> Result<ObjectId, EngineError> {
        let outcome = self.apply(Update::InsertObjectAt {
            center,
            floor,
            radius,
            instances,
            seed,
        })?;
        Ok(outcome
            .inserted_object()
            .expect("insert yields an inserted-object outcome"))
    }

    /// Removes an object, returning it (a copy — the versions pinned by
    /// older snapshots keep the entry; the new version does not).
    pub fn remove_object(&mut self, id: ObjectId) -> Result<UncertainObject, EngineError> {
        let object = self.state.store.get(id)?.clone();
        self.apply(Update::RemoveObject(id))?;
        Ok(object)
    }

    /// Moves an object: deletion followed by insertion with a re-sampled
    /// uncertainty region at the new position (§III-C.2's update flow).
    /// The new region is sampled (and can fail) *before* anything commits,
    /// so a failed move leaves the object exactly where it was.
    pub fn move_object(
        &mut self,
        id: ObjectId,
        center: Point2,
        floor: Floor,
        seed: u64,
    ) -> Result<(), EngineError> {
        self.apply(Update::MoveObject {
            id,
            center,
            floor,
            seed,
        })
        .map(|_| ())
    }

    // ---- queries (§IV) ---------------------------------------------------
    //
    // Stability contract: these convenience methods are kept indefinitely
    // as thin delegations onto a default snapshot — existing callers never
    // need to name `Query` or `Outcome`. All of them route through the
    // owned [`Snapshot`] (one code path with the concurrent sessions). New
    // code (and anything issuing several queries against one consistent
    // view) should prefer [`IndoorEngine::snapshot`] +
    // [`Snapshot::execute`] / [`Snapshot::execute_batch`].

    /// `iRQ(q, r)` with the engine's default options.
    pub fn range_query(&self, q: IndoorPoint, r: f64) -> Result<RangeResult, EngineError> {
        self.range_query_with(q, r, &self.query_options())
    }

    /// `iRQ(q, r)` with explicit options (ablations, exact refinement…).
    pub fn range_query_with(
        &self,
        q: IndoorPoint,
        r: f64,
        options: &QueryOptions,
    ) -> Result<RangeResult, EngineError> {
        Ok(self
            .snapshot_with(*options)
            .execute(&Query::Range { q, r })?
            .into_range()
            .expect("range query yields a range outcome"))
    }

    /// `ikNNQ(q, k)` with the engine's default options.
    pub fn knn(&self, q: IndoorPoint, k: usize) -> Result<KnnResult, EngineError> {
        self.knn_with(q, k, &self.query_options())
    }

    /// `ikNNQ(q, k)` with explicit options.
    pub fn knn_with(
        &self,
        q: IndoorPoint,
        k: usize,
        options: &QueryOptions,
    ) -> Result<KnnResult, EngineError> {
        Ok(self
            .snapshot_with(*options)
            .execute(&Query::Knn { q, k })?
            .into_knn()
            .expect("kNN query yields a kNN outcome"))
    }

    /// Point-to-point indoor distance `|q,p|_I`.
    pub fn indoor_distance(&self, q: IndoorPoint, p: IndoorPoint) -> Result<f64, EngineError> {
        Ok(self
            .snapshot()
            .execute(&Query::Distance { q, p })?
            .into_distance()
            .expect("distance query yields a distance outcome")
            .distance)
    }

    /// Shortest indoor path `q ⇝δ p`: length plus the door sequence.
    pub fn shortest_path(
        &self,
        q: IndoorPoint,
        p: IndoorPoint,
    ) -> Result<Option<(f64, Vec<DoorId>)>, EngineError> {
        Ok(self
            .snapshot()
            .execute(&Query::Path { q, p })?
            .into_path()
            .expect("path query yields a path outcome")
            .path)
    }

    // ---- topology updates (§III-C.1) -------------------------------------
    //
    // Same stability contract: thin delegations onto [`IndoorEngine::apply`].

    /// Closes a door and updates the index layers.
    pub fn close_door(&mut self, d: DoorId) -> Result<(), EngineError> {
        self.apply(Update::CloseDoor(d)).map(|_| ())
    }

    /// Re-opens a door.
    pub fn open_door(&mut self, d: DoorId) -> Result<(), EngineError> {
        self.apply(Update::OpenDoor(d)).map(|_| ())
    }

    /// Adds a temporary door between two partitions.
    pub fn insert_door(
        &mut self,
        a: PartitionId,
        b: PartitionId,
        position: Point2,
        floor: Floor,
        direction: Direction,
    ) -> Result<DoorId, EngineError> {
        Ok(self
            .apply(Update::InsertDoor {
                a,
                b,
                position,
                floor,
                direction,
            })?
            .inserted_door()
            .expect("door insert yields an inserted-door outcome"))
    }

    /// Inserts a partition with its doors.
    pub fn insert_partition(
        &mut self,
        spec: PartitionSpec,
    ) -> Result<(PartitionId, Vec<DoorId>), EngineError> {
        match self.apply(Update::InsertPartition(spec))? {
            UpdateOutcome::PartitionInserted { partition, doors } => Ok((partition, doors)),
            _ => unreachable!("partition insert yields a partition-inserted outcome"),
        }
    }

    /// Deletes a partition and its doors.
    pub fn delete_partition(&mut self, pid: PartitionId) -> Result<(), EngineError> {
        self.apply(Update::DeletePartition(pid)).map(|_| ())
    }

    /// Splits a rectangular partition with a sliding wall.
    pub fn split_partition(
        &mut self,
        pid: PartitionId,
        line: SplitLine,
        connecting_door: Option<Point2>,
    ) -> Result<[PartitionId; 2], EngineError> {
        Ok(self
            .apply(Update::SplitPartition {
                partition: pid,
                line,
                connecting_door,
            })?
            .split_halves()
            .expect("split yields a partition-split outcome"))
    }

    /// Merges two partitions (dismounts a sliding wall).
    pub fn merge_partitions(
        &mut self,
        a: PartitionId,
        b: PartitionId,
    ) -> Result<PartitionId, EngineError> {
        Ok(self
            .apply(Update::MergePartitions(a, b))?
            .merged_partition()
            .expect("merge yields a partitions-merged outcome"))
    }

    /// Validates cross-layer invariants (test/diagnostic support): returns
    /// an error when the index has not absorbed every space mutation, and
    /// panics on broken index-internal invariants (those indicate a bug,
    /// never an operational state).
    pub fn validate(&self) -> Result<(), EngineError> {
        self.state.index.validate();
        self.state.index.check_fresh(&self.state.space)?;
        Ok(())
    }
}

impl Drop for IndoorEngine {
    /// Retires the writer: every subscription's stream ends (blocked
    /// `wait()`s wake up with `None`); service handles keep answering
    /// queries on the final committed version.
    fn drop(&mut self) {
        self.shared.retire_writer();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::Rect2;
    use idq_model::FloorPlanBuilder;

    fn three_rooms() -> IndoorSpace {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(r1, r2, Point2::new(20.0, 5.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn end_to_end_insert_query_remove() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        let o2 = e
            .insert_object_at(Point2::new(25.0, 5.0), 0, 1.0, 8, 2)
            .unwrap();
        e.validate().unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let knn = e.knn(q, 2).unwrap();
        assert_eq!(knn.results.len(), 2);
        assert_eq!(knn.results[0].object, o1);
        assert_eq!(knn.results[1].object, o2);
        let within = e.range_query(q, 16.0).unwrap();
        assert_eq!(within.results.len(), 1);
        e.remove_object(o1).unwrap();
        let knn = e.knn(q, 2).unwrap();
        assert_eq!(knn.results.len(), 1);
        assert_eq!(knn.results[0].object, o2);
        e.validate().unwrap();
    }

    #[test]
    fn move_object_changes_ranking() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        let o2 = e
            .insert_object_at(Point2::new(25.0, 5.0), 0, 1.0, 8, 2)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        assert_eq!(e.knn(q, 1).unwrap().results[0].object, o1);
        // Move o1 to the far room and o2 near the query.
        e.move_object(o1, Point2::new(28.0, 5.0), 0, 9).unwrap();
        e.move_object(o2, Point2::new(12.0, 5.0), 0, 9).unwrap();
        assert_eq!(e.knn(q, 1).unwrap().results[0].object, o2);
        e.validate().unwrap();
    }

    #[test]
    fn door_closure_reroutes_distance() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let p = IndoorPoint::new(Point2::new(28.0, 5.0), 0);
        let before = e.indoor_distance(q, p).unwrap();
        assert!(before.is_finite());
        let (_, doors) = e.shortest_path(q, p).unwrap().unwrap();
        assert_eq!(doors.len(), 2);
        e.close_door(doors[1]).unwrap();
        assert!(e.indoor_distance(q, p).unwrap().is_infinite());
        e.open_door(doors[1]).unwrap();
        assert!((e.indoor_distance(q, p).unwrap() - before).abs() < 1e-9);
        e.validate().unwrap();
    }

    #[test]
    fn split_and_merge_keep_queries_working() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 3)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mid = e
            .space()
            .partition_at(IndoorPoint::new(Point2::new(15.0, 2.0), 0))
            .unwrap();
        let halves = e
            .split_partition(mid, SplitLine::AtX(15.5), Some(Point2::new(15.5, 5.0)))
            .unwrap();
        e.validate().unwrap();
        let hits = e.range_query(q, 30.0).unwrap();
        assert!(hits.results.iter().any(|h| h.object == o));
        let merged = e.merge_partitions(halves[0], halves[1]).unwrap();
        e.validate().unwrap();
        assert!(e.space().partition(merged).is_ok());
        let hits = e.range_query(q, 30.0).unwrap();
        assert!(hits.results.iter().any(|h| h.object == o));
    }

    #[test]
    fn duplicate_insert_is_rejected_consistently() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let id = e
            .insert_object_at(Point2::new(5.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        let dup = UncertainObject::point_object(id, IndoorPoint::new(Point2::new(5.0, 5.0), 0));
        assert!(e.insert_object(dup).is_err());
        // The failed insert left no trace: cross-layer invariants hold and
        // the original object still answers queries.
        e.validate().unwrap();
        let q = IndoorPoint::new(Point2::new(8.0, 5.0), 0);
        assert_eq!(e.knn(q, 1).unwrap().results[0].object, id);
    }

    #[test]
    fn insert_on_an_uncovered_floor_is_rejected() {
        // A fully-formed object names its floor directly (no sampling to
        // reject it); the engine must refuse floors the space does not
        // cover, or the shard vectors would grow to the bogus floor.
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let epoch = e.epoch();
        let stray =
            UncertainObject::point_object(ObjectId(7), IndoorPoint::new(Point2::new(5.0, 5.0), 9));
        let err = e.insert_object(stray).unwrap_err();
        assert!(matches!(err, EngineError::FloorOutOfSpace { floor: 9, .. }));
        assert!(err.to_string().contains("floor 9"));
        assert_eq!(e.epoch(), epoch);
        assert_eq!(e.store().shard_count(), 0, "no shard slot was created");
        e.validate().unwrap();
    }

    #[test]
    fn failed_move_restores_the_original_object() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let id = e
            .insert_object_at(Point2::new(5.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        // Moving to a position outside every partition fails in sampling,
        // before anything commits.
        assert!(e.move_object(id, Point2::new(-50.0, -50.0), 0, 9).is_err());
        e.validate().unwrap();
        assert!(e.store().contains(id));
        let q = IndoorPoint::new(Point2::new(8.0, 5.0), 0);
        assert_eq!(e.knn(q, 1).unwrap().results[0].object, id);
    }

    #[test]
    fn epoch_bumps_once_per_apply_and_stamps_snapshots() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        assert_eq!(e.epoch(), 0);
        assert_eq!(e.snapshot().version(), 0);
        e.insert_object_at(Point2::new(5.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        assert_eq!(e.epoch(), 1);
        let report = e
            .apply_batch(&[
                Update::InsertObjectAt {
                    center: Point2::new(15.0, 5.0),
                    floor: 0,
                    radius: 1.0,
                    instances: 4,
                    seed: 2,
                },
                Update::InsertObjectAt {
                    center: Point2::new(25.0, 5.0),
                    floor: 0,
                    radius: 1.0,
                    instances: 4,
                    seed: 3,
                },
            ])
            .unwrap();
        // One batch, one epoch bump — and the report names it.
        assert_eq!(e.epoch(), 2);
        assert_eq!(report.epoch, 2);
        assert_eq!(e.snapshot().version(), 2);
        assert_eq!(report.delta.inserted.len(), 2);
        assert!(!report.delta.topology_changed);
        // A failed apply leaves the epoch alone.
        assert!(e
            .move_object(ObjectId(0), Point2::new(-9.0, -9.0), 0, 1)
            .is_err());
        assert_eq!(e.epoch(), 2);
        // An empty batch is a committed no-op.
        let report = e.apply_batch(&[]).unwrap();
        assert_eq!(report.epoch, 2);
        assert!(report.delta.is_empty());
    }

    #[test]
    fn failed_batch_rolls_everything_back() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(5.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        let epoch = e.epoch();
        let watermark = e.store().id_watermark();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let before = e.range_query(q, 40.0).unwrap().results;
        // Two good updates followed by a failing one (move to nowhere).
        let err = e.apply_batch(&[
            Update::MoveObject {
                id: o1,
                center: Point2::new(25.0, 5.0),
                floor: 0,
                seed: 7,
            },
            Update::InsertObjectAt {
                center: Point2::new(15.0, 5.0),
                floor: 0,
                radius: 1.0,
                instances: 4,
                seed: 8,
            },
            Update::MoveObject {
                id: o1,
                center: Point2::new(-50.0, -50.0),
                floor: 0,
                seed: 9,
            },
        ]);
        assert!(err.is_err());
        e.validate().unwrap();
        assert_eq!(e.epoch(), epoch);
        assert_eq!(e.store().id_watermark(), watermark);
        assert_eq!(e.store().len(), 1);
        assert_eq!(e.range_query(q, 40.0).unwrap().results, before);
        // The object is back at its original position.
        assert_eq!(
            e.store().get(o1).unwrap().region.center,
            Point2::new(5.0, 5.0)
        );
    }

    #[test]
    fn failed_topology_batch_leaves_the_committed_version() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let p = IndoorPoint::new(Point2::new(28.0, 5.0), 0);
        let d_before = e.indoor_distance(q, p).unwrap();
        let version = e.space().version();
        let (_, doors) = e.shortest_path(q, p).unwrap().unwrap();
        // A move, a door closure, then a failing update: the closure ran
        // on the dropped transaction copy, so the committed space is
        // untouched (structurally, not via undo).
        let err = e.apply_batch(&[
            Update::MoveObject {
                id: o1,
                center: Point2::new(25.0, 5.0),
                floor: 0,
                seed: 3,
            },
            Update::CloseDoor(doors[1]),
            Update::RemoveObject(ObjectId(4040)),
        ]);
        assert!(err.is_err());
        e.validate().unwrap();
        assert_eq!(e.space().version(), version, "space untouched");
        assert!((e.indoor_distance(q, p).unwrap() - d_before).abs() < 1e-9);
        assert_eq!(
            e.store().get(o1).unwrap().region.center,
            Point2::new(15.0, 5.0)
        );
    }

    #[test]
    fn external_insert_reserves_its_id_for_later_allocations() {
        // Regression: an `InsertObject` with an externally minted id,
        // followed in the same batch by an `InsertObjectAt`, must allocate
        // exactly as sequential application would (the insert only lands at
        // commit, so staging has to reserve the id up front).
        let updates = |id: u64| {
            vec![
                Update::InsertObject(Box::new(UncertainObject::point_object(
                    ObjectId(id),
                    IndoorPoint::new(Point2::new(5.0, 5.0), 0),
                ))),
                Update::InsertObjectAt {
                    center: Point2::new(15.0, 5.0),
                    floor: 0,
                    radius: 1.0,
                    instances: 4,
                    seed: 1,
                },
            ]
        };
        for id in [0u64, 5] {
            let mut seq = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
            let mut bat = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
            for u in updates(id) {
                seq.apply(u).unwrap();
            }
            let report = bat.apply_batch(&updates(id)).unwrap();
            assert_eq!(
                seq.store().ids_sorted(),
                bat.store().ids_sorted(),
                "id {id}"
            );
            assert_eq!(report.delta.inserted, seq.store().ids_sorted());
            bat.validate().unwrap();
        }
    }

    #[test]
    fn batch_equals_sequential_on_a_mixed_stream() {
        let mut seq = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let mut bat = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let updates = vec![
            Update::InsertObjectAt {
                center: Point2::new(5.0, 5.0),
                floor: 0,
                radius: 1.0,
                instances: 4,
                seed: 1,
            },
            Update::InsertObjectAt {
                center: Point2::new(15.0, 5.0),
                floor: 0,
                radius: 1.0,
                instances: 4,
                seed: 2,
            },
            Update::InsertObjectAt {
                center: Point2::new(25.0, 5.0),
                floor: 0,
                radius: 1.0,
                instances: 4,
                seed: 3,
            },
            Update::MoveObject {
                id: ObjectId(0),
                center: Point2::new(28.0, 5.0),
                floor: 0,
                seed: 4,
            },
            // Same object again: forces a run split, still equivalent.
            Update::MoveObject {
                id: ObjectId(0),
                center: Point2::new(2.0, 5.0),
                floor: 0,
                seed: 5,
            },
            Update::RemoveObject(ObjectId(1)),
        ];
        for u in &updates {
            seq.apply(u.clone()).unwrap();
        }
        let report = bat.apply_batch(&updates).unwrap();
        assert_eq!(report.outcomes.len(), updates.len());
        assert_eq!(report.delta.inserted, vec![ObjectId(0), ObjectId(2)]);
        assert_eq!(report.delta.removed, Vec::<ObjectId>::new());
        seq.validate().unwrap();
        bat.validate().unwrap();
        assert_eq!(seq.store().ids_sorted(), bat.store().ids_sorted());
        for id in seq.store().ids_sorted() {
            let (a, b) = (seq.store().get(id).unwrap(), bat.store().get(id).unwrap());
            assert_eq!(a.region.center, b.region.center);
            assert_eq!(a.len(), b.len());
        }
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let (a, b) = (
            seq.range_query(q, 30.0).unwrap(),
            bat.range_query(q, 30.0).unwrap(),
        );
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn parallel_sessions_read_while_the_writer_commits() {
        // The tentpole demo in miniature (the full grid lives in
        // tests/concurrency_stress.rs): four reader threads execute
        // sessions on service snapshots while the writer commits, and
        // every answer is consistent with the version its snapshot pins.
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        e.insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        let service = e.service();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let service = service.clone();
                scope.spawn(move || {
                    for _ in 0..20 {
                        let snap = service.snapshot();
                        let out = snap.execute(&Query::Range { q, r: 40.0 }).unwrap();
                        let hits = out.as_range().unwrap().results.len();
                        // Epoch e has exactly 1 + (e - 1) live objects
                        // (first insert above, then one per commit below).
                        assert_eq!(hits as u64, snap.version(), "pinned answers");
                    }
                });
            }
            for seed in 2..=8u64 {
                e.insert_object_at(Point2::new(14.0 + seed as f64, 5.0), 0, 1.0, 8, seed)
                    .unwrap();
            }
        });
        assert_eq!(e.epoch(), 8);
        assert_eq!(service.epoch(), 8);
    }
}
