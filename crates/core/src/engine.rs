//! The engine: space + objects + index, kept consistent.

use crate::error::EngineError;
use idq_distance::{indoor_distance, shortest_path};
use idq_geom::Point2;
use idq_index::{CompositeIndex, IndexConfig};
use idq_model::IndoorPoint;
use idq_model::{
    Direction, DoorId, Floor, IndoorSpace, PartitionId, PartitionSpec, SplitLine, TopologyEvent,
};
use idq_objects::{GaussianSampler, ObjectId, ObjectStore, UncertainObject};
use idq_query::{knn_query, range_query, KnnResult, QueryOptions, RangeResult};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Engine configuration: index layout plus default query options.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineConfig {
    /// Composite-index parameters (fanout, `T_shape`, bulk load).
    pub index: IndexConfig,
    /// Default query options (ablation switches, subgraph slack).
    pub query: QueryOptions,
}

/// The integrated engine: one consistent view of the indoor world.
#[derive(Debug)]
pub struct IndoorEngine {
    space: IndoorSpace,
    store: ObjectStore,
    index: CompositeIndex,
    options: QueryOptions,
    /// Largest uncertainty radius seen, used to widen the subgraph slack.
    max_radius: f64,
}

impl IndoorEngine {
    /// Builds an engine over a space with no objects yet.
    pub fn new(space: IndoorSpace, config: EngineConfig) -> Result<Self, EngineError> {
        Self::with_objects(space, ObjectStore::new(), config)
    }

    /// Builds an engine over a space and an existing object population.
    pub fn with_objects(
        space: IndoorSpace,
        store: ObjectStore,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        let index = CompositeIndex::build(&space, &store, config.index)?;
        let max_radius = store.iter().map(|o| o.region.radius).fold(0.0f64, f64::max);
        Ok(IndoorEngine {
            space,
            store,
            index,
            options: config.query,
            max_radius,
        })
    }

    // ---- accessors -------------------------------------------------------

    /// The indoor space.
    pub fn space(&self) -> &IndoorSpace {
        &self.space
    }

    /// The object population.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// The composite index.
    pub fn index(&self) -> &CompositeIndex {
        &self.index
    }

    /// The effective default query options (slack widened to the largest
    /// uncertainty region inserted so far).
    pub fn query_options(&self) -> QueryOptions {
        let by_radius = QueryOptions::for_max_radius(self.max_radius);
        QueryOptions {
            subgraph_slack: self.options.subgraph_slack.max(by_radius.subgraph_slack),
            ..self.options
        }
    }

    // ---- object management (§III-C.2) --------------------------------------

    /// Inserts a fully-formed uncertain object.
    pub fn insert_object(&mut self, object: UncertainObject) -> Result<(), EngineError> {
        self.index.insert_object(&self.space, &object)?;
        self.max_radius = self.max_radius.max(object.region.radius);
        if let Err(e) = self.store.insert(object) {
            // Roll the index back so layers stay consistent.
            // (Duplicate ids are the only failure mode here.)
            return Err(e.into());
        }
        Ok(())
    }

    /// Samples and inserts an object: Gaussian instances in a circular
    /// region, per the paper's object model (§V-A).
    pub fn insert_object_at(
        &mut self,
        center: Point2,
        floor: Floor,
        radius: f64,
        instances: usize,
        seed: u64,
    ) -> Result<ObjectId, EngineError> {
        let id = self.store.allocate_id();
        let sampler = GaussianSampler {
            instances: instances.max(1),
            ..GaussianSampler::default()
        };
        let mut rng = StdRng::seed_from_u64(seed ^ id.0);
        let object = sampler.sample(id, center, floor, radius, &self.space, &mut rng)?;
        self.insert_object(object)?;
        Ok(id)
    }

    /// Removes an object, returning it.
    pub fn remove_object(&mut self, id: ObjectId) -> Result<UncertainObject, EngineError> {
        self.index.remove_object(id)?;
        Ok(self.store.remove(id)?)
    }

    /// Moves an object: deletion followed by insertion with a re-sampled
    /// uncertainty region at the new position (§III-C.2's update flow).
    pub fn move_object(
        &mut self,
        id: ObjectId,
        center: Point2,
        floor: Floor,
        seed: u64,
    ) -> Result<(), EngineError> {
        let old = self.store.get(id)?;
        let radius = old.region.radius;
        let instances = old.len();
        let sampler = GaussianSampler {
            instances,
            ..GaussianSampler::default()
        };
        let mut rng = StdRng::seed_from_u64(seed ^ id.0);
        let object = sampler.sample(id, center, floor, radius, &self.space, &mut rng)?;
        self.store.remove(id)?;
        self.store.insert(object)?;
        self.index.update_object(&self.space, self.store.get(id)?)?;
        Ok(())
    }

    // ---- queries (§IV) -------------------------------------------------------

    /// `iRQ(q, r)` with the engine's default options.
    pub fn range_query(&self, q: IndoorPoint, r: f64) -> Result<RangeResult, EngineError> {
        self.range_query_with(q, r, &self.query_options())
    }

    /// `iRQ(q, r)` with explicit options (ablations, exact refinement…).
    pub fn range_query_with(
        &self,
        q: IndoorPoint,
        r: f64,
        options: &QueryOptions,
    ) -> Result<RangeResult, EngineError> {
        Ok(range_query(
            &self.space,
            &self.index,
            &self.store,
            q,
            r,
            options,
        )?)
    }

    /// `ikNNQ(q, k)` with the engine's default options.
    pub fn knn(&self, q: IndoorPoint, k: usize) -> Result<KnnResult, EngineError> {
        self.knn_with(q, k, &self.query_options())
    }

    /// `ikNNQ(q, k)` with explicit options.
    pub fn knn_with(
        &self,
        q: IndoorPoint,
        k: usize,
        options: &QueryOptions,
    ) -> Result<KnnResult, EngineError> {
        Ok(knn_query(
            &self.space,
            &self.index,
            &self.store,
            q,
            k,
            options,
        )?)
    }

    /// Point-to-point indoor distance `|q,p|_I`.
    pub fn indoor_distance(&self, q: IndoorPoint, p: IndoorPoint) -> Result<f64, EngineError> {
        Ok(indoor_distance(
            &self.space,
            self.index.doors_graph(),
            q,
            p,
        )?)
    }

    /// Shortest indoor path `q ⇝δ p`: length plus the door sequence.
    pub fn shortest_path(
        &self,
        q: IndoorPoint,
        p: IndoorPoint,
    ) -> Result<Option<(f64, Vec<DoorId>)>, EngineError> {
        Ok(shortest_path(&self.space, self.index.doors_graph(), q, p)?)
    }

    // ---- topology updates (§III-C.1) --------------------------------------------

    /// Closes a door and updates the index layers.
    pub fn close_door(&mut self, d: DoorId) -> Result<(), EngineError> {
        let ev = self.space.close_door(d)?;
        self.apply(&[ev])
    }

    /// Re-opens a door.
    pub fn open_door(&mut self, d: DoorId) -> Result<(), EngineError> {
        let ev = self.space.open_door(d)?;
        self.apply(&[ev])
    }

    /// Adds a temporary door between two partitions.
    pub fn insert_door(
        &mut self,
        a: PartitionId,
        b: PartitionId,
        position: Point2,
        floor: Floor,
        direction: Direction,
    ) -> Result<DoorId, EngineError> {
        let (id, ev) = self.space.insert_door(a, b, position, floor, direction)?;
        self.apply(&[ev])?;
        Ok(id)
    }

    /// Inserts a partition with its doors.
    pub fn insert_partition(
        &mut self,
        spec: PartitionSpec,
    ) -> Result<(PartitionId, Vec<DoorId>), EngineError> {
        let (pid, doors, events) = self.space.insert_partition(spec)?;
        self.apply(&events)?;
        Ok((pid, doors))
    }

    /// Deletes a partition and its doors.
    pub fn delete_partition(&mut self, pid: PartitionId) -> Result<(), EngineError> {
        let events = self.space.delete_partition(pid)?;
        self.apply(&events)
    }

    /// Splits a rectangular partition with a sliding wall.
    pub fn split_partition(
        &mut self,
        pid: PartitionId,
        line: SplitLine,
        connecting_door: Option<Point2>,
    ) -> Result<[PartitionId; 2], EngineError> {
        let (halves, events) = self.space.split_partition(pid, line, connecting_door)?;
        self.apply(&events)?;
        Ok(halves)
    }

    /// Merges two partitions (dismounts a sliding wall).
    pub fn merge_partitions(
        &mut self,
        a: PartitionId,
        b: PartitionId,
    ) -> Result<PartitionId, EngineError> {
        let (merged, events) = self.space.merge_partitions(a, b)?;
        self.apply(&events)?;
        Ok(merged)
    }

    fn apply(&mut self, events: &[TopologyEvent]) -> Result<(), EngineError> {
        for ev in events {
            self.index.apply_topology(&self.space, &self.store, ev)?;
        }
        Ok(())
    }

    /// Validates cross-layer invariants (test/diagnostic support).
    pub fn validate(&self) {
        self.index.validate();
        self.index
            .check_fresh(&self.space)
            .expect("index is current with the space");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::Rect2;
    use idq_model::FloorPlanBuilder;

    fn three_rooms() -> IndoorSpace {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(r1, r2, Point2::new(20.0, 5.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn end_to_end_insert_query_remove() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        let o2 = e
            .insert_object_at(Point2::new(25.0, 5.0), 0, 1.0, 8, 2)
            .unwrap();
        e.validate();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let knn = e.knn(q, 2).unwrap();
        assert_eq!(knn.results.len(), 2);
        assert_eq!(knn.results[0].object, o1);
        assert_eq!(knn.results[1].object, o2);
        let within = e.range_query(q, 16.0).unwrap();
        assert_eq!(within.results.len(), 1);
        e.remove_object(o1).unwrap();
        let knn = e.knn(q, 2).unwrap();
        assert_eq!(knn.results.len(), 1);
        assert_eq!(knn.results[0].object, o2);
        e.validate();
    }

    #[test]
    fn move_object_changes_ranking() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        let o2 = e
            .insert_object_at(Point2::new(25.0, 5.0), 0, 1.0, 8, 2)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        assert_eq!(e.knn(q, 1).unwrap().results[0].object, o1);
        // Move o1 to the far room and o2 near the query.
        e.move_object(o1, Point2::new(28.0, 5.0), 0, 9).unwrap();
        e.move_object(o2, Point2::new(12.0, 5.0), 0, 9).unwrap();
        assert_eq!(e.knn(q, 1).unwrap().results[0].object, o2);
        e.validate();
    }

    #[test]
    fn door_closure_reroutes_distance() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let p = IndoorPoint::new(Point2::new(28.0, 5.0), 0);
        let before = e.indoor_distance(q, p).unwrap();
        assert!(before.is_finite());
        let (_, doors) = e.shortest_path(q, p).unwrap().unwrap();
        assert_eq!(doors.len(), 2);
        e.close_door(doors[1]).unwrap();
        assert!(e.indoor_distance(q, p).unwrap().is_infinite());
        e.open_door(doors[1]).unwrap();
        assert!((e.indoor_distance(q, p).unwrap() - before).abs() < 1e-9);
        e.validate();
    }

    #[test]
    fn split_and_merge_keep_queries_working() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 3)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mid = e
            .space()
            .partition_at(IndoorPoint::new(Point2::new(15.0, 2.0), 0))
            .unwrap();
        let halves = e
            .split_partition(mid, SplitLine::AtX(15.5), Some(Point2::new(15.5, 5.0)))
            .unwrap();
        e.validate();
        let hits = e.range_query(q, 30.0).unwrap();
        assert!(hits.results.iter().any(|h| h.object == o));
        let merged = e.merge_partitions(halves[0], halves[1]).unwrap();
        e.validate();
        assert!(e.space().partition(merged).is_ok());
        let hits = e.range_query(q, 30.0).unwrap();
        assert!(hits.results.iter().any(|h| h.object == o));
    }

    #[test]
    fn duplicate_insert_is_rejected_consistently() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let id = e
            .insert_object_at(Point2::new(5.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        let dup = UncertainObject::point_object(id, IndoorPoint::new(Point2::new(5.0, 5.0), 0));
        assert!(e.insert_object(dup).is_err());
    }
}
