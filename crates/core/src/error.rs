//! Engine-level error type unifying the layer errors.

/// Any error surfaced by [`crate::IndoorEngine`].
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// Indoor-space model error.
    Model(idq_model::ModelError),
    /// Object-layer error.
    Object(idq_objects::ObjectError),
    /// Index maintenance error.
    Index(idq_index::IndexError),
    /// Distance evaluation error.
    Distance(idq_distance::DistanceError),
    /// Query evaluation error.
    Query(idq_query::QueryError),
    /// The query kind cannot back a standing subscription. Range
    /// ([`idq_query::Query::Range`]) and kNN ([`idq_query::Query::Knn`])
    /// queries have incremental maintenance paths and subscribe fine;
    /// point-to-point distance and path queries have no object-dependent
    /// result to maintain — re-run those on a fresh snapshot instead.
    UnsupportedSubscription(idq_query::Query),
    /// An object update named a floor no partition of the space covers.
    /// Rejected up front: beyond being unanswerable by every query, an
    /// out-of-space floor would permanently grow the per-floor shard
    /// vectors of the copy-on-write state.
    FloorOutOfSpace {
        /// The floor the update named.
        floor: idq_model::Floor,
        /// Floors the space covers (valid floors are `0..num_floors`).
        num_floors: usize,
    },
    /// A durability operation failed: the write-ahead log or a checkpoint
    /// could not be written. The failing commit did **not** publish — the
    /// in-memory state still matches what is durable.
    Storage {
        /// Where the storage backend lives (directory path, or the
        /// in-memory backend's label).
        path: String,
        /// The epoch being made durable when the failure hit.
        epoch: u64,
        /// The underlying storage failure
        /// ([`std::error::Error::source`] exposes it).
        cause: idq_storage::StorageError,
    },
    /// Crash recovery failed: the checkpoint or log suffix exists but
    /// could not be turned back into a consistent engine (corruption past
    /// the torn tail, an epoch gap, or a replay that diverged from the
    /// logged outcomes).
    Recovery {
        /// Where the storage backend lives.
        path: String,
        /// The epoch recovery was processing when it failed.
        epoch: u64,
        /// The underlying failure
        /// ([`std::error::Error::source`] exposes it).
        cause: idq_storage::StorageError,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Model(e) => write!(f, "{e}"),
            EngineError::Object(e) => write!(f, "{e}"),
            EngineError::Index(e) => write!(f, "{e}"),
            EngineError::Distance(e) => write!(f, "{e}"),
            EngineError::Query(e) => write!(f, "{e}"),
            EngineError::UnsupportedSubscription(q) => {
                write!(
                    f,
                    "standing subscription requires a range or kNN query \
                     (distance and path queries have no incremental \
                     maintenance path), got {q}"
                )
            }
            EngineError::FloorOutOfSpace { floor, num_floors } => {
                write!(
                    f,
                    "floor {floor} is outside the space (covers {num_floors} floor(s))"
                )
            }
            EngineError::Storage { path, epoch, .. } => {
                write!(f, "durability failure at {path} (epoch {epoch})")
            }
            EngineError::Recovery { path, epoch, .. } => {
                write!(f, "recovery failure at {path} (epoch {epoch})")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage { cause, .. } | EngineError::Recovery { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

impl From<idq_model::ModelError> for EngineError {
    fn from(e: idq_model::ModelError) -> Self {
        EngineError::Model(e)
    }
}
impl From<idq_objects::ObjectError> for EngineError {
    fn from(e: idq_objects::ObjectError) -> Self {
        EngineError::Object(e)
    }
}
impl From<idq_index::IndexError> for EngineError {
    fn from(e: idq_index::IndexError) -> Self {
        EngineError::Index(e)
    }
}
impl From<idq_distance::DistanceError> for EngineError {
    fn from(e: idq_distance::DistanceError) -> Self {
        EngineError::Distance(e)
    }
}
impl From<idq_query::QueryError> for EngineError {
    fn from(e: idq_query::QueryError) -> Self {
        EngineError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = idq_query::QueryError::ZeroK.into();
        assert!(e.to_string().contains('1'));
        let e: EngineError =
            idq_model::ModelError::UnknownPartition(idq_model::PartitionId(2)).into();
        assert!(e.to_string().contains("P2"));
    }

    #[test]
    fn storage_errors_expose_their_source() {
        use std::error::Error;
        let cause = idq_storage::StorageError::Corrupt {
            path: "wal-0000000000000000.log".into(),
            offset: 16,
            reason: "crc mismatch".into(),
        };
        let e = EngineError::Storage {
            path: "/var/lib/idq".into(),
            epoch: 42,
            cause: cause.clone(),
        };
        assert!(e.to_string().contains("/var/lib/idq"));
        assert!(e.to_string().contains("42"));
        let src = e.source().expect("storage errors carry a source");
        assert!(src.to_string().contains("crc mismatch"));
        let e = EngineError::Recovery {
            path: "mem".into(),
            epoch: 7,
            cause,
        };
        assert!(e.source().is_some());
        assert!(matches!(e, EngineError::Recovery { epoch: 7, .. }));
    }
}
