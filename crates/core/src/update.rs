//! Typed updates — the write-side mirror of the read side's
//! [`idq_query::Query`].
//!
//! An [`Update`] names any mutation the engine supports: the object flow of
//! §III-C.2 (insert / move / remove) and the topology flow of §III-C.1
//! (door state, temporary doors, partition insertion/deletion, sliding-wall
//! split/merge). One update goes through
//! [`crate::IndoorEngine::apply`]; a stream goes through
//! [`crate::IndoorEngine::apply_batch`], which applies the whole slice as
//! one **atomic transaction** (all-or-nothing) and **amortizes** index
//! maintenance across it (position updates grouped by touched partition,
//! topology events coalesced into a single skeleton repair).
//!
//! Every successful apply bumps the engine's monotone *epoch*, which
//! snapshots expose as [`crate::Snapshot::version`]; a committed
//! batch additionally returns an [`UpdateReport`] whose [`UpdateDelta`]
//! feeds standing monitors (`RangeMonitor::absorb`) without the caller
//! re-deriving what changed.

use idq_geom::Point2;
use idq_model::{Direction, DoorId, Floor, PartitionId, PartitionSpec, SplitLine};
use idq_objects::{ObjectId, UncertainObject};
use std::collections::BTreeSet;

/// One mutation of the indoor world, executed by
/// [`crate::IndoorEngine::apply`] / [`crate::IndoorEngine::apply_batch`].
#[derive(Clone, Debug)]
pub enum Update {
    /// Insert a fully-formed uncertain object (the id must be unused).
    InsertObject(Box<UncertainObject>),
    /// Sample and insert an object: Gaussian instances in a circular
    /// region (§V-A's object model); the engine allocates the id.
    InsertObjectAt {
        /// Uncertainty-region centre.
        center: Point2,
        /// Floor of the centre.
        floor: Floor,
        /// Uncertainty-region radius, metres.
        radius: f64,
        /// Instances to sample (≥ 1).
        instances: usize,
        /// Sampling seed (xor-ed with the allocated id).
        seed: u64,
    },
    /// Move an object: §III-C.2's deletion-plus-insertion flow with a
    /// re-sampled uncertainty region at the new position.
    MoveObject {
        /// The object to move.
        id: ObjectId,
        /// New uncertainty-region centre.
        center: Point2,
        /// New floor.
        floor: Floor,
        /// Sampling seed (xor-ed with the id).
        seed: u64,
    },
    /// Remove an object.
    RemoveObject(ObjectId),
    /// Re-open a closed door.
    OpenDoor(DoorId),
    /// Close a door.
    CloseDoor(DoorId),
    /// Add a temporary door between two partitions.
    InsertDoor {
        /// One side.
        a: PartitionId,
        /// The other side.
        b: PartitionId,
        /// Door midpoint.
        position: Point2,
        /// Floor.
        floor: Floor,
        /// Directionality.
        direction: Direction,
    },
    /// Insert a partition with its doors.
    InsertPartition(PartitionSpec),
    /// Delete a partition and its doors.
    DeletePartition(PartitionId),
    /// Split a rectangular partition with a sliding wall.
    SplitPartition {
        /// The partition to split.
        partition: PartitionId,
        /// The wall position.
        line: SplitLine,
        /// Optional connecting door in the new wall.
        connecting_door: Option<Point2>,
    },
    /// Merge two partitions (dismount a sliding wall).
    MergePartitions(PartitionId, PartitionId),
}

impl Update {
    /// Whether this update mutates the topology (space + index tiers)
    /// rather than the object population.
    pub fn is_topology(&self) -> bool {
        !matches!(
            self,
            Update::InsertObject(_)
                | Update::InsertObjectAt { .. }
                | Update::MoveObject { .. }
                | Update::RemoveObject(_)
        )
    }

    /// The object id the update names, when it names one up front
    /// (`InsertObjectAt` allocates its id during application).
    pub fn object_id(&self) -> Option<ObjectId> {
        match self {
            Update::InsertObject(o) => Some(o.id),
            Update::MoveObject { id, .. } => Some(*id),
            Update::RemoveObject(id) => Some(*id),
            _ => None,
        }
    }
}

/// What one applied [`Update`] produced.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateOutcome {
    /// An object was inserted.
    ObjectInserted(ObjectId),
    /// An object moved.
    ObjectMoved(ObjectId),
    /// An object was removed.
    ObjectRemoved(ObjectId),
    /// A door re-opened.
    DoorOpened(DoorId),
    /// A door closed.
    DoorClosed(DoorId),
    /// A door was added.
    DoorInserted(DoorId),
    /// A partition was inserted, with its doors.
    PartitionInserted {
        /// The new partition.
        partition: PartitionId,
        /// Its doors, in spec order.
        doors: Vec<DoorId>,
    },
    /// A partition (and its doors) was deleted.
    PartitionDeleted(PartitionId),
    /// A partition was split in two.
    PartitionSplit {
        /// The retired original.
        old: PartitionId,
        /// The two halves.
        halves: [PartitionId; 2],
    },
    /// Two partitions were merged.
    PartitionsMerged {
        /// The merged partition.
        merged: PartitionId,
    },
}

impl UpdateOutcome {
    /// The id of the object this outcome inserted, if any.
    pub fn inserted_object(&self) -> Option<ObjectId> {
        match self {
            UpdateOutcome::ObjectInserted(id) => Some(*id),
            _ => None,
        }
    }

    /// The id of the door this outcome inserted, if any.
    pub fn inserted_door(&self) -> Option<DoorId> {
        match self {
            UpdateOutcome::DoorInserted(d) => Some(*d),
            _ => None,
        }
    }

    /// The two halves of a split, if this outcome is one.
    pub fn split_halves(&self) -> Option<[PartitionId; 2]> {
        match self {
            UpdateOutcome::PartitionSplit { halves, .. } => Some(*halves),
            _ => None,
        }
    }

    /// The merged partition, if this outcome is a merge.
    pub fn merged_partition(&self) -> Option<PartitionId> {
        match self {
            UpdateOutcome::PartitionsMerged { merged } => Some(*merged),
            _ => None,
        }
    }
}

/// The **net** effect of a committed batch on downstream consumers: which
/// objects exist with a new state (`inserted` for ids absent before the
/// batch, `moved` for ids that existed and changed), which disappeared, and
/// whether the topology changed at all. "Net" means intra-batch churn
/// cancels: an object inserted and removed in the same batch appears
/// nowhere; one removed and re-inserted appears in `moved`. All id lists
/// are ascending and disjoint.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UpdateDelta {
    /// Objects that did not exist before the batch and do now.
    pub inserted: Vec<ObjectId>,
    /// Objects that existed before the batch and changed state.
    pub moved: Vec<ObjectId>,
    /// Objects that existed before the batch and no longer do.
    pub removed: Vec<ObjectId>,
    /// Whether any topology update committed.
    pub topology_changed: bool,
    /// Floors the batch's object updates touched (ascending, deduped) —
    /// the commit's routing footprint at shard granularity. Empty for a
    /// pure-topology batch (`topology_changed` covers routing then).
    pub floors: Vec<Floor>,
    /// Partitions whose object population changed (ascending, deduped):
    /// every partition an inserted/moved/removed object's instances
    /// occupied before *or* after the batch. A standing query whose
    /// candidate-partition set is disjoint from this list provably cannot
    /// change membership on this commit (unless `topology_changed`).
    pub partitions: Vec<PartitionId>,
}

impl UpdateDelta {
    /// `inserted ∪ moved` — every id a standing monitor must re-evaluate —
    /// ascending.
    pub fn updated(&self) -> Vec<ObjectId> {
        let mut out: Vec<ObjectId> = self
            .inserted
            .iter()
            .chain(self.moved.iter())
            .copied()
            .collect();
        out.sort_unstable();
        out
    }

    /// `true` when the batch changed nothing downstream consumers can see.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty()
            && self.moved.is_empty()
            && self.removed.is_empty()
            && !self.topology_changed
    }
}

/// Set-backed accumulator the engine folds outcomes into while a batch is
/// in flight; [`DeltaBuilder::finish`] yields the sorted [`UpdateDelta`].
#[derive(Debug, Default)]
pub(crate) struct DeltaBuilder {
    inserted: BTreeSet<ObjectId>,
    moved: BTreeSet<ObjectId>,
    removed: BTreeSet<ObjectId>,
    topology_changed: bool,
}

impl DeltaBuilder {
    pub(crate) fn record(&mut self, outcome: &UpdateOutcome) {
        match outcome {
            UpdateOutcome::ObjectInserted(id) => {
                if self.removed.remove(id) {
                    // Existed before the batch: net effect is a state change.
                    self.moved.insert(*id);
                } else {
                    self.inserted.insert(*id);
                }
            }
            UpdateOutcome::ObjectMoved(id) => {
                if !self.inserted.contains(id) {
                    self.moved.insert(*id);
                }
            }
            UpdateOutcome::ObjectRemoved(id) => {
                if !self.inserted.remove(id) {
                    self.moved.remove(id);
                    self.removed.insert(*id);
                }
            }
            _ => self.topology_changed = true,
        }
    }

    /// Yields the sorted delta. The routing footprint (`floors`,
    /// `partitions`) is not tracked here — the write path fills it in from
    /// the batch's staged footprint after `finish`.
    pub(crate) fn finish(self) -> UpdateDelta {
        UpdateDelta {
            inserted: self.inserted.into_iter().collect(),
            moved: self.moved.into_iter().collect(),
            removed: self.removed.into_iter().collect(),
            topology_changed: self.topology_changed,
            floors: Vec::new(),
            partitions: Vec::new(),
        }
    }
}

/// Maintenance counters of one committed batch — the evidence that the
/// amortized paths engaged (`idq-bench`'s `ingest` binary reports them).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Updates in the batch.
    pub updates: usize,
    /// Position updates (inserts, moves, removes).
    pub position_updates: usize,
    /// Tree traversals spent computing object footprints — the grouped
    /// path's saving shows as `footprint_searches <` inserts + moves.
    pub footprint_searches: usize,
    /// Skeleton-tier rebuilds (coalesced: at most one per topology run).
    pub skeleton_rebuilds: usize,
    /// Distinct floor shards the batch's object updates landed in — the
    /// number of per-floor store/o-table slices the commit deep-copied
    /// (everything else was shared structurally with the previous
    /// version). A single-object commit reports 1 (2 for a cross-floor
    /// move); topology updates are accounted by `checkpointed` instead.
    pub shards_touched: usize,
    /// Whether the batch contained topology updates and therefore
    /// copy-on-wrote the space layer — and with it the index's shared
    /// geometry tiers — in addition to the touched object shards.
    pub checkpointed: bool,
    /// How many batches shared this batch's commit epoch (group commit —
    /// see [`crate::WriteHandle`]). An uncontended batch reports 1; a
    /// committed no-op (empty batch, no epoch bump) reports 0.
    pub group_batches: usize,
    /// Whether the batch lost its optimistic staging race (a conflicting
    /// batch committed between stage and sequence) and was transparently
    /// re-validated against the state it actually landed on.
    pub restaged: bool,
}

impl UpdateStats {
    /// Folds one group member's counters into a merged group-commit
    /// report: work counters add, the checkpoint and re-stage flags OR,
    /// and `group_batches` counts the members. `shards_touched` is
    /// deliberately **not** summed — members may share floors, so the
    /// caller sets it from the union of touched floors.
    pub fn absorb_group_member(&mut self, member: &UpdateStats) {
        self.updates += member.updates;
        self.position_updates += member.position_updates;
        self.footprint_searches += member.footprint_searches;
        self.skeleton_rebuilds += member.skeleton_rebuilds;
        self.checkpointed |= member.checkpointed;
        self.restaged |= member.restaged;
        self.group_batches += 1;
    }
}

/// The receipt of a committed [`crate::IndoorEngine::apply_batch`]: one
/// [`UpdateOutcome`] per input update (input order), the net
/// [`UpdateDelta`], the engine epoch after the commit, and the maintenance
/// [`UpdateStats`].
#[derive(Clone, Debug)]
pub struct UpdateReport {
    /// Per-update outcomes, in input order.
    pub outcomes: Vec<UpdateOutcome>,
    /// Net effect on the object population and topology.
    pub delta: UpdateDelta,
    /// Engine epoch after the commit (what subsequent snapshots report as
    /// their version). Under group commit several batches share one
    /// epoch; `offset_in_epoch` breaks the tie.
    pub epoch: u64,
    /// This batch's position within its commit group, in sequencer order:
    /// replaying every committed batch sorted by `(epoch,
    /// offset_in_epoch)` serially reproduces the state bit-exactly. The
    /// merged report a subscription receives covers the whole group and
    /// carries 0.
    pub offset_in_epoch: usize,
    /// Maintenance counters.
    pub stats: UpdateStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_nets_out_intra_batch_churn() {
        let mut b = DeltaBuilder::default();
        // Fresh insert then removal: cancels entirely.
        b.record(&UpdateOutcome::ObjectInserted(ObjectId(1)));
        b.record(&UpdateOutcome::ObjectRemoved(ObjectId(1)));
        // Remove then re-insert of a pre-existing object: a net move.
        b.record(&UpdateOutcome::ObjectRemoved(ObjectId(2)));
        b.record(&UpdateOutcome::ObjectInserted(ObjectId(2)));
        // Insert then move: still a net insert.
        b.record(&UpdateOutcome::ObjectInserted(ObjectId(3)));
        b.record(&UpdateOutcome::ObjectMoved(ObjectId(3)));
        // Move then remove: a net removal.
        b.record(&UpdateOutcome::ObjectMoved(ObjectId(4)));
        b.record(&UpdateOutcome::ObjectRemoved(ObjectId(4)));
        let d = b.finish();
        assert_eq!(d.inserted, vec![ObjectId(3)]);
        assert_eq!(d.moved, vec![ObjectId(2)]);
        assert_eq!(d.removed, vec![ObjectId(4)]);
        assert!(!d.topology_changed);
        assert_eq!(d.updated(), vec![ObjectId(2), ObjectId(3)]);
        assert!(!d.is_empty());
        assert!(UpdateDelta::default().is_empty());
    }

    #[test]
    fn group_stats_merge_adds_work_and_counts_members() {
        let a = UpdateStats {
            updates: 3,
            position_updates: 3,
            footprint_searches: 2,
            shards_touched: 1,
            group_batches: 1,
            ..UpdateStats::default()
        };
        let b = UpdateStats {
            updates: 2,
            position_updates: 1,
            footprint_searches: 1,
            skeleton_rebuilds: 1,
            shards_touched: 2,
            checkpointed: true,
            group_batches: 1,
            restaged: true,
        };
        let mut merged = UpdateStats::default();
        merged.absorb_group_member(&a);
        merged.absorb_group_member(&b);
        assert_eq!(merged.updates, 5);
        assert_eq!(merged.position_updates, 4);
        assert_eq!(merged.footprint_searches, 3);
        assert_eq!(merged.skeleton_rebuilds, 1);
        assert!(
            merged.checkpointed,
            "any checkpointing member marks the group"
        );
        assert!(merged.restaged, "any re-staged member marks the group");
        assert_eq!(merged.group_batches, 2, "members counted, not summed");
        // Shard counts never add across members (floors may be shared):
        // the caller computes the union and sets it explicitly.
        assert_eq!(merged.shards_touched, 0);
        merged.shards_touched = 2;
        assert_eq!(merged.shards_touched, 2);
    }

    #[test]
    fn per_batch_stats_keep_their_own_footprint() {
        // A group member's own report must reflect its own footprint and
        // checkpoint flag even when a sibling in the group checkpointed:
        // merging is one-directional, into the merged report only.
        let member = UpdateStats {
            updates: 1,
            position_updates: 1,
            footprint_searches: 1,
            shards_touched: 1,
            group_batches: 4,
            ..UpdateStats::default()
        };
        let mut merged = UpdateStats {
            checkpointed: true,
            shards_touched: 3,
            ..UpdateStats::default()
        };
        merged.absorb_group_member(&member);
        assert!(!member.checkpointed);
        assert_eq!(member.shards_touched, 1);
        assert_eq!(member.group_batches, 4, "member names the group size");
    }

    #[test]
    fn update_classification() {
        assert!(!Update::RemoveObject(ObjectId(1)).is_topology());
        assert!(Update::CloseDoor(idq_model::DoorId(0)).is_topology());
        assert_eq!(
            Update::RemoveObject(ObjectId(7)).object_id(),
            Some(ObjectId(7))
        );
        let at = Update::InsertObjectAt {
            center: Point2::new(0.0, 0.0),
            floor: 0,
            radius: 1.0,
            instances: 4,
            seed: 1,
        };
        assert!(at.object_id().is_none());
        assert!(!at.is_topology());
    }
}
