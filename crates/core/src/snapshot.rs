//! `EngineSnapshot` — a cheap, consistent read view over an engine's
//! space, objects and index, executing typed [`Query`]s.

use crate::error::EngineError;
use idq_index::CompositeIndex;
use idq_model::IndoorSpace;
use idq_objects::ObjectStore;
use idq_query::{execute, execute_batch, Outcome, Query, QueryOptions};

/// A consistent read view of the indoor world.
///
/// A snapshot borrows the engine's three layers immutably, so holding one
/// keeps writers out (Rust's borrow rules are the isolation mechanism):
/// every query issued through one snapshot sees the same space version,
/// object population and index state. Creating a snapshot is free — it
/// copies three references and the effective [`QueryOptions`] — so create
/// one per request wave and drop it when the answers are out.
///
/// [`EngineSnapshot::execute_batch`] is the reuse path of the paper's
/// §VII future-work item: queries in one batch that share a query point
/// and floor share one restricted door-distance Dijkstra and one
/// subregion-decomposition cache. Results are identical to issuing the
/// queries one at a time; only the `QueryStats` reuse counters differ.
///
/// Snapshots can also be assembled from bare parts with
/// [`EngineSnapshot::new`] — benchmark harnesses that own a space, store
/// and index without an engine use this.
#[derive(Clone, Copy, Debug)]
pub struct EngineSnapshot<'a> {
    space: &'a IndoorSpace,
    store: &'a ObjectStore,
    index: &'a CompositeIndex,
    options: QueryOptions,
    version: u64,
}

impl<'a> EngineSnapshot<'a> {
    /// Assembles a snapshot from bare layers (the engine's
    /// [`crate::IndoorEngine::snapshot`] is the usual entry point). A
    /// bare-parts snapshot reports version 0; use
    /// [`EngineSnapshot::with_version`] to stamp one.
    pub fn new(
        space: &'a IndoorSpace,
        store: &'a ObjectStore,
        index: &'a CompositeIndex,
        options: QueryOptions,
    ) -> Self {
        EngineSnapshot {
            space,
            store,
            index,
            options,
            version: 0,
        }
    }

    /// Stamps the snapshot with an engine epoch (see
    /// [`crate::IndoorEngine::epoch`]).
    pub fn with_version(self, version: u64) -> Self {
        EngineSnapshot { version, ..self }
    }

    /// The engine epoch this snapshot was taken at: two snapshots with the
    /// same version saw the identical world, and a monitor fed from an
    /// [`crate::UpdateReport`] is current iff its last absorbed report's
    /// epoch matches the snapshot version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The indoor space this snapshot reads.
    pub fn space(&self) -> &'a IndoorSpace {
        self.space
    }

    /// The object population this snapshot reads.
    pub fn store(&self) -> &'a ObjectStore {
        self.store
    }

    /// The composite index this snapshot reads.
    pub fn index(&self) -> &'a CompositeIndex {
        self.index
    }

    /// The query options every execution uses.
    pub fn options(&self) -> &QueryOptions {
        &self.options
    }

    /// A copy of this snapshot with different query options.
    pub fn with_options(self, options: QueryOptions) -> Self {
        EngineSnapshot { options, ..self }
    }

    /// Evaluates one query.
    pub fn execute(&self, query: &Query) -> Result<Outcome, EngineError> {
        Ok(execute(
            self.space,
            self.index,
            self.store,
            query,
            &self.options,
        )?)
    }

    /// Evaluates a batch of queries with cross-query computation reuse,
    /// returning outcomes in input order. Queries sharing a query point
    /// and floor share one evaluation context (one restricted Dijkstra +
    /// one subregion cache); see [`idq_query::execute_batch`].
    pub fn execute_batch(&self, queries: &[Query]) -> Result<Vec<Outcome>, EngineError> {
        Ok(execute_batch(
            self.space,
            self.index,
            self.store,
            queries,
            &self.options,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, IndoorEngine};
    use idq_geom::{Point2, Rect2};
    use idq_model::{FloorPlanBuilder, IndoorPoint};

    fn three_rooms() -> IndoorSpace {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(r1, r2, Point2::new(20.0, 5.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn snapshot_executes_all_query_kinds() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let p = IndoorPoint::new(Point2::new(25.0, 5.0), 0);

        let snap = e.snapshot();
        let range = snap.execute(&Query::Range { q, r: 20.0 }).unwrap();
        assert_eq!(range.as_range().unwrap().results[0].object, o1);
        let knn = snap.execute(&Query::Knn { q, k: 1 }).unwrap();
        assert_eq!(knn.as_knn().unwrap().results[0].object, o1);
        let dist = snap.execute(&Query::Distance { q, p }).unwrap();
        assert!(dist.as_distance().unwrap().distance.is_finite());
        let path = snap.execute(&Query::Path { q, p }).unwrap();
        let (_, doors) = path.as_path().unwrap().path.clone().unwrap();
        assert_eq!(doors.len(), 2);
    }

    #[test]
    fn one_snapshot_serves_a_batch_with_reuse() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        e.insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        e.insert_object_at(Point2::new(25.0, 5.0), 0, 1.0, 8, 2)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let queries = vec![
            Query::Range { q, r: 16.0 },
            Query::Range { q, r: 30.0 },
            Query::Knn { q, k: 2 },
        ];
        let snap = e.snapshot();
        let outcomes = snap.execute_batch(&queries).unwrap();
        let dijkstras: usize = outcomes.iter().map(|o| o.stats().dijkstras_run).sum();
        assert_eq!(dijkstras, 1, "shared query point → one context build");
        for (query, out) in queries.iter().zip(&outcomes) {
            let single = snap.execute(query).unwrap();
            match (out, single) {
                (Outcome::Range(a), Outcome::Range(b)) => assert_eq!(a.results, b.results),
                (Outcome::Knn(a), Outcome::Knn(b)) => assert_eq!(a.results, b.results),
                _ => panic!("variant mismatch"),
            }
        }
    }

    #[test]
    fn snapshot_options_can_be_overridden() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        e.insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let base = e.snapshot();
        assert!(base.options().use_pruning);
        let ablated = base.with_options(QueryOptions::builder().pruning(false).build());
        let out = ablated.execute(&Query::Range { q, r: 20.0 }).unwrap();
        assert_eq!(out.as_range().unwrap().stats.accepted_by_bounds, 0);
        // The pre-sized snapshot from the engine widens the slack like
        // query_options() does.
        assert_eq!(
            base.options().subgraph_slack,
            e.query_options().subgraph_slack
        );
    }
}
