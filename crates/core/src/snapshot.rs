//! [`Snapshot`] — an owned, consistent read view over one committed
//! version of the indoor world, executing typed [`Query`]s from any
//! thread.
//!
//! A snapshot pins an [`EngineState`] by reference count: it is `Clone +
//! Send + Sync + 'static`, costs six machine words to copy, and never
//! blocks or is blocked by the writer — a committing
//! [`crate::IndoorEngine::apply_batch`] publishes a *new* state and
//! leaves every pinned version untouched. (The borrowed
//! `EngineSnapshot<'_>` of the single-threaded era is gone; harnesses
//! holding bare layers use [`Snapshot::from_parts`].)

use crate::error::EngineError;
use crate::state::EngineState;
use idq_index::CompositeIndex;
use idq_model::IndoorSpace;
use idq_objects::ObjectStore;
use idq_query::{execute, execute_batch, Outcome, Query, QueryOptions};
use std::sync::Arc;

/// An owned, consistent read view of the indoor world.
///
/// A snapshot pins one committed [`EngineState`] version: every query
/// issued through it sees the same space version, object population and
/// index state, no matter how many batches the writer commits in the
/// meantime. Because the pin is a reference count rather than a borrow,
/// snapshots are freely cloned, sent to other threads, and held across
/// `await`-points or work queues — this is the session handle the
/// concurrent service API hands to reader threads.
///
/// [`Snapshot::execute_batch`] is the reuse path of the paper's §VII
/// future-work item: queries in one batch that share a query point and
/// floor share one restricted door-distance Dijkstra and one
/// subregion-decomposition cache. Results are identical to issuing the
/// queries one at a time; only the `QueryStats` reuse counters differ.
///
/// Query evaluation holds **no locks**: the layers are reached through
/// the pinned `Arc`s, so a Dijkstra in one session never serialises
/// against other sessions or the writer.
#[derive(Clone, Debug)]
pub struct Snapshot {
    state: Arc<EngineState>,
    options: QueryOptions,
}

impl Snapshot {
    /// Pins a state with explicit query options (the engine's
    /// [`crate::IndoorEngine::snapshot`] and the service's
    /// [`crate::IndoorService::snapshot`] are the usual entry points).
    pub fn from_state(state: Arc<EngineState>, options: QueryOptions) -> Self {
        Snapshot { state, options }
    }

    /// Assembles a snapshot from bare layers at version 0 — benchmark
    /// harnesses that own a space, store and index without an engine use
    /// this.
    pub fn from_parts(
        space: Arc<IndoorSpace>,
        store: Arc<ObjectStore>,
        index: Arc<CompositeIndex>,
        options: QueryOptions,
    ) -> Self {
        Snapshot {
            state: Arc::new(EngineState::from_parts(space, store, index, options)),
            options,
        }
    }

    /// The engine epoch this snapshot is pinned to: two snapshots with the
    /// same version saw the identical world, and a monitor fed from a
    /// [`crate::UpdateReport`] is current iff its last absorbed report's
    /// epoch matches the snapshot version.
    pub fn version(&self) -> u64 {
        self.state.epoch
    }

    /// The pinned state.
    pub fn state(&self) -> &EngineState {
        &self.state
    }

    /// Encodes the pinned version as a checkpoint payload (space, store,
    /// and the engine's radius high-water mark — the exact bytes
    /// background checkpoints write). Because the snapshot pins an
    /// immutable version, this runs concurrently with committing writers
    /// and always encodes a transactionally consistent world.
    pub fn encode_checkpoint(&self) -> Vec<u8> {
        self.state.encode_checkpoint()
    }

    /// The indoor space this snapshot reads.
    pub fn space(&self) -> &IndoorSpace {
        self.state.space()
    }

    /// The object population this snapshot reads.
    pub fn store(&self) -> &ObjectStore {
        self.state.store()
    }

    /// The composite index this snapshot reads.
    pub fn index(&self) -> &CompositeIndex {
        self.state.index()
    }

    /// The query options every execution uses.
    pub fn options(&self) -> &QueryOptions {
        &self.options
    }

    /// A copy of this snapshot with different query options, pinned to the
    /// same version.
    pub fn with_options(self, options: QueryOptions) -> Self {
        Snapshot { options, ..self }
    }

    /// Evaluates one query.
    pub fn execute(&self, query: &Query) -> Result<Outcome, EngineError> {
        Ok(execute(
            self.space(),
            self.index(),
            self.store(),
            query,
            &self.options,
        )?)
    }

    /// Evaluates a batch of queries with cross-query computation reuse,
    /// returning outcomes in input order. Queries sharing a query point
    /// and floor share one evaluation context (one restricted Dijkstra +
    /// one subregion cache); see [`idq_query::execute_batch`].
    pub fn execute_batch(&self, queries: &[Query]) -> Result<Vec<Outcome>, EngineError> {
        Ok(execute_batch(
            self.space(),
            self.index(),
            self.store(),
            queries,
            &self.options,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, IndoorEngine};
    use idq_geom::{Point2, Rect2};
    use idq_model::{FloorPlanBuilder, IndoorPoint};

    fn three_rooms() -> IndoorSpace {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(r1, r2, Point2::new(20.0, 5.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn snapshot_executes_all_query_kinds() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let p = IndoorPoint::new(Point2::new(25.0, 5.0), 0);

        let snap = e.snapshot();
        let range = snap.execute(&Query::Range { q, r: 20.0 }).unwrap();
        assert_eq!(range.as_range().unwrap().results[0].object, o1);
        let knn = snap.execute(&Query::Knn { q, k: 1 }).unwrap();
        assert_eq!(knn.as_knn().unwrap().results[0].object, o1);
        let dist = snap.execute(&Query::Distance { q, p }).unwrap();
        assert!(dist.as_distance().unwrap().distance.is_finite());
        let path = snap.execute(&Query::Path { q, p }).unwrap();
        let (_, doors) = path.as_path().unwrap().path.clone().unwrap();
        assert_eq!(doors.len(), 2);
    }

    #[test]
    fn one_snapshot_serves_a_batch_with_reuse() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        e.insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        e.insert_object_at(Point2::new(25.0, 5.0), 0, 1.0, 8, 2)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let queries = vec![
            Query::Range { q, r: 16.0 },
            Query::Range { q, r: 30.0 },
            Query::Knn { q, k: 2 },
        ];
        let snap = e.snapshot();
        let outcomes = snap.execute_batch(&queries).unwrap();
        let dijkstras: usize = outcomes.iter().map(|o| o.stats().dijkstras_run).sum();
        assert_eq!(dijkstras, 1, "shared query point → one context build");
        for (query, out) in queries.iter().zip(&outcomes) {
            let single = snap.execute(query).unwrap();
            match (out, single) {
                (Outcome::Range(a), Outcome::Range(b)) => assert_eq!(a.results, b.results),
                (Outcome::Knn(a), Outcome::Knn(b)) => assert_eq!(a.results, b.results),
                _ => panic!("variant mismatch"),
            }
        }
    }

    #[test]
    fn snapshot_options_can_be_overridden() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        e.insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let base = e.snapshot();
        assert!(base.options().use_pruning);
        let ablated = base
            .clone()
            .with_options(QueryOptions::builder().pruning(false).build());
        let out = ablated.execute(&Query::Range { q, r: 20.0 }).unwrap();
        assert_eq!(out.as_range().unwrap().stats.accepted_by_bounds, 0);
        // The pre-sized snapshot from the engine widens the slack like
        // query_options() does.
        assert_eq!(
            base.options().subgraph_slack,
            e.query_options().subgraph_slack
        );
    }

    #[test]
    fn snapshots_pin_their_version_across_writes() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let pinned = e.snapshot();
        assert_eq!(pinned.version(), 1);

        // Writer keeps committing; the pinned snapshot must not notice.
        e.remove_object(o1).unwrap();
        let o2 = e
            .insert_object_at(Point2::new(25.0, 5.0), 0, 1.0, 8, 2)
            .unwrap();
        assert_eq!(e.epoch(), 3);

        let old = pinned.execute(&Query::Range { q, r: 20.0 }).unwrap();
        assert_eq!(old.as_range().unwrap().results[0].object, o1);
        let new = e.snapshot().execute(&Query::Range { q, r: 40.0 }).unwrap();
        assert_eq!(new.as_range().unwrap().results[0].object, o2);
        // A clone pins the same version.
        let clone = pinned.clone();
        assert_eq!(clone.version(), pinned.version());
    }

    #[test]
    fn from_parts_assembles_a_bare_snapshot() {
        use idq_index::IndexConfig;
        use std::sync::Arc;
        let space = three_rooms();
        let store = ObjectStore::new();
        let index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
        let snap = Snapshot::from_parts(
            Arc::new(space),
            Arc::new(store),
            Arc::new(index),
            QueryOptions::default(),
        );
        assert_eq!(snap.version(), 0);
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let out = snap.execute(&Query::Range { q, r: 10.0 }).unwrap();
        assert!(out.as_range().unwrap().results.is_empty());
    }
}
