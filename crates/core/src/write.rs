//! The parallel sharded write path: concurrent staging, the epoch
//! sequencer, and group commit.
//!
//! [`WriteHandle`] makes the engine **multi-writer**. Commit processing is
//! split in two:
//!
//! 1. **Parallel stage phase** — each submitting thread validates and
//!    prepares its batch against the latest published version, with no
//!    locks held: duplicate/existence checks, id allocation, footprint
//!    traversals and Gaussian sampling all happen here, producing
//!    shard-local, `Send` `PreparedOp`s.
//! 2. **Serial epoch sequencer** — staged batches enqueue, and the first
//!    submitter to take the sequencer lock becomes the *leader*: it drains
//!    the queue, orders the batches, detects conflicts via floor/id
//!    `Footprint`s (a conflicting batch re-stages against the working
//!    state, preserving serial semantics), applies the prepared ops, and
//!    publishes **one atomic epoch swap for the whole group**. Batches
//!    that coalesced into the group return without ever leading — their
//!    result slot is already filled when they acquire the lock.
//!
//! Group commit is what makes concurrent single-`apply` callers scale: the
//! dominant per-commit cost (deep-copying each touched floor shard, the
//! snapshot, the broadcast) is paid once per *group* rather than once per
//! batch. The [`WriteHandle::with_commit_window`] knob optionally holds
//! the window open so more writers can join a group; the default (zero)
//! already coalesces naturally under contention, because every submitter
//! blocked on the sequencer lock has its batch in the queue the leader
//! drains.
//!
//! Semantics are unchanged from the single-writer engine: the committed
//! history is **exactly** a serial execution of the batches in sequencer
//! order — `(epoch, offset_in_epoch)` — which
//! `tests/parallel_commit_equivalence.rs` proves bit-exactly against a
//! serial replay.

use crate::error::EngineError;
use crate::service::Shared;
use crate::snapshot::Snapshot;
use crate::state::EngineState;
use crate::update::{DeltaBuilder, Update, UpdateOutcome, UpdateReport, UpdateStats};
use idq_geom::{Circle, Mbr3, Point2};
use idq_index::{CompositeIndex, UnitId};
use idq_model::{Floor, IndoorSpace, PartitionId, TopologyEvent};
use idq_objects::{GaussianSampler, ObjectError, ObjectId, ObjectStore, UncertainObject};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Planar side length (metres) of the spatial cells staging groups
/// position updates by: `(floor, ⌊x/cell⌋, ⌊y/cell⌋)` of the new region
/// centre is a constant-time proxy for the touched partition (cells are
/// sized to the §V-A mall generator's room scale), so updates landing in
/// the same partition share one footprint traversal without paying a
/// point-location query per update.
const GROUP_CELL_M: f64 = 60.0;

/// Commit groups whose merged footprints the sequencer remembers for
/// conflict detection; batches staged against an epoch older than the
/// remembered window re-stage conservatively.
const RECENT_GROUPS: usize = 64;

/// Sampling parameters of a deferred Gaussian draw (resolved during
/// validation, executed during staging with an index-derived partition
/// hint).
#[derive(Debug)]
struct SampleSpec {
    id: ObjectId,
    center: Point2,
    floor: Floor,
    radius: f64,
    instances: usize,
    seed: u64,
}

/// A validated position update: existence and duplicate checks done, ids
/// allocated, sampling parameters resolved — nothing mutated, nothing
/// sampled yet. Crucially the write MBR is already known (a sampled
/// object's instances are truncated to its region, so its footprint is the
/// region's bounding box), which is what lets a run compute all footprints
/// first — shared traversals, grouped by touched partition — and then feed
/// each footprint's partitions back to the sampler as a point-location
/// hint.
#[derive(Debug)]
enum Intent {
    /// Insert this fully-formed object.
    InsertReady(Box<UncertainObject>),
    /// Sample a fresh object, then insert it.
    SampleInsert(SampleSpec),
    /// Sample the moved object's new state, then replace the old one
    /// (currently filed under the carried floor).
    SampleMove(SampleSpec, Floor),
    /// Remove this object (filed under the carried floor).
    Remove(ObjectId, Floor),
}

impl Intent {
    /// The MBR this intent writes into the index, if it writes one.
    fn write_mbr(&self, space: &IndoorSpace) -> Option<Mbr3> {
        match self {
            Intent::InsertReady(o) => Some(Mbr3::planar(
                o.footprint_rect(),
                o.floor,
                space.elevation(o.floor),
            )),
            Intent::SampleInsert(s) | Intent::SampleMove(s, _) => {
                let rect = Circle::new(s.center, s.radius).bbox();
                Some(Mbr3::planar(rect, s.floor, space.elevation(s.floor)))
            }
            Intent::Remove(..) => None,
        }
    }

    /// Grouping key: (floor, partition-scale cell) of the write centre.
    fn group_key(&self) -> Option<(Floor, i64, i64)> {
        let (center, floor) = match self {
            Intent::InsertReady(o) => (o.region.center, o.floor),
            Intent::SampleInsert(s) | Intent::SampleMove(s, _) => (s.center, s.floor),
            Intent::Remove(..) => return None,
        };
        let cx = (center.x / GROUP_CELL_M).floor() as i64;
        let cy = (center.y / GROUP_CELL_M).floor() as i64;
        Some((floor, cx, cy))
    }
}

/// What an object carried over from earlier updates of the same run —
/// sequential semantics without splitting the run on repeated ids.
#[derive(Clone, Copy, Debug)]
enum PendingState {
    /// The object will be live with this region radius / instance count,
    /// filed under this floor's shard.
    Live {
        radius: f64,
        instances: usize,
        floor: Floor,
    },
    /// The object will be gone.
    Removed,
}

/// A staged position update: validated, footprinted and sampled — the
/// commit can no longer fail on user input. Prepared ops are shard-local
/// (they carry the floor(s) they land in) and `Send`: staging happens on
/// the submitting thread, application on whichever thread leads the
/// commit group.
#[derive(Debug)]
enum PreparedOp {
    /// Insert this object under the prepared footprint.
    Insert(Box<UncertainObject>, Vec<UnitId>, Mbr3),
    /// Replace the same-id object under the prepared footprint; the
    /// carried floor is where the object currently lives, so the commit
    /// routes straight to the touched shard(s) without probing.
    Move(Box<UncertainObject>, Vec<UnitId>, Mbr3, Floor),
    /// Remove this object from the carried floor's shards.
    Remove(ObjectId, Floor),
}

/// Accumulators of one in-flight batch transaction.
#[derive(Debug, Default)]
struct BatchState {
    outcomes: Vec<UpdateOutcome>,
    delta: DeltaBuilder,
    stats: UpdateStats,
    /// Floors whose shards the batch's object ops landed in — reported as
    /// `UpdateStats::shards_touched`.
    floors: BTreeSet<Floor>,
    /// Partitions whose object population the batch changed — every
    /// partition an object op's instances occupied before or after the op
    /// — reported as the commit's routing footprint
    /// (`UpdateDelta::partitions`).
    partitions: BTreeSet<PartitionId>,
}

/// The copy-on-write working state of one write transaction.
///
/// Begins as cheap `Arc` clones of a committed version's layers. The
/// layers themselves are **sharded by floor** (`ObjectStore` into
/// `StoreShard`s, the index's object tier into `FloorShard`s with
/// `Arc`-per-bucket, the index's geometry tiers each behind their own
/// `Arc`), so "cloning a layer" here is a handful of pointer bumps: the
/// first mutation of a *shard* is what deep-copies it (`Arc::make_mut`
/// inside the layer — the committed version always holds a second
/// reference), and everything the batch never touches is shared
/// structurally with the committed version. A pure object batch
/// deep-copies exactly the floor shards its updates land in plus the
/// buckets whose membership changes; a batch containing topology updates
/// degrades to also copying the space and the index's geometry tiers. On
/// success the `Arc`s become the next [`EngineState`]; on error the
/// transaction is dropped and the committed version was never touched —
/// rollback is structural, not compensating.
#[derive(Clone, Debug)]
struct Txn {
    space: Arc<IndoorSpace>,
    store: Arc<ObjectStore>,
    index: Arc<CompositeIndex>,
    max_radius: f64,
    /// Whether the space layer was copy-on-written (i.e. the batch
    /// contained topology updates) — reported as `UpdateStats::checkpointed`.
    space_cloned: bool,
}

impl Txn {
    fn begin(state: &EngineState) -> Self {
        Txn {
            space: Arc::clone(&state.space),
            store: Arc::clone(&state.store),
            index: Arc::clone(&state.index),
            max_radius: state.max_radius,
            space_cloned: false,
        }
    }

    /// The forward pass of one batch: alternating runs of position updates
    /// (prepared, then committed with grouped footprints) and topology
    /// updates (applied with one deferred skeleton repair per run).
    fn run_batch(&mut self, updates: &[Update], state: &mut BatchState) -> Result<(), EngineError> {
        state.stats.updates = updates.len();
        let mut i = 0;
        while i < updates.len() {
            if updates[i].is_topology() {
                let mut skeleton_dirty = false;
                while i < updates.len() && updates[i].is_topology() {
                    let outcome = self.apply_topology_update(&updates[i], &mut skeleton_dirty)?;
                    state.delta.record(&outcome);
                    state.outcomes.push(outcome);
                    i += 1;
                }
                if skeleton_dirty {
                    Arc::make_mut(&mut self.index).rebuild_skeleton(&self.space);
                    state.stats.skeleton_rebuilds += 1;
                }
            } else {
                let start = i;
                while i < updates.len() && !updates[i].is_topology() {
                    i += 1;
                }
                let ops = self.stage_position_run(&updates[start..i], &mut state.stats)?;
                for op in ops {
                    let outcome =
                        self.apply_object_op(op, &mut state.floors, &mut state.partitions)?;
                    state.delta.record(&outcome);
                    state.outcomes.push(outcome);
                }
            }
        }
        Ok(())
    }

    /// Stages one run of position updates without applying anything — the
    /// validate + prepare half of [`Txn::run_batch`], and the whole of the
    /// parallel stage phase. Id allocations and reservations land on this
    /// transaction's store copy; when the parallel path discards the
    /// staging transaction, nothing is lost — applying the staged inserts
    /// re-reserves every id, so the watermark ends identical to a serial
    /// replay.
    fn stage_position_run(
        &mut self,
        updates: &[Update],
        stats: &mut UpdateStats,
    ) -> Result<Vec<PreparedOp>, EngineError> {
        // Validate every update first (duplicate/existence checks against
        // the store plus the run's own pending effects), then stage the
        // run (shared footprint traversals, hint-assisted sampling — all
        // remaining fallible work, still nothing committed).
        let mut intents: Vec<Intent> = Vec::with_capacity(updates.len());
        let mut pending: HashMap<ObjectId, PendingState> = HashMap::new();
        for update in updates {
            intents.push(self.prepare_intent(update, &mut pending)?);
            stats.position_updates += 1;
        }
        self.stage_run(intents, stats)
    }

    /// Validates one position [`Update`] against the store *and* the run's
    /// pending effects (so a run may touch the same object repeatedly with
    /// sequential semantics), allocating ids and resolving sampling
    /// parameters. Id allocation lands on the transaction's store copy, so
    /// a failed batch leaks nothing.
    fn prepare_intent(
        &mut self,
        update: &Update,
        pending: &mut HashMap<ObjectId, PendingState>,
    ) -> Result<Intent, EngineError> {
        match update {
            Update::InsertObject(object) => {
                let id = object.id;
                let exists = match pending.get(&id) {
                    Some(PendingState::Live { .. }) => true,
                    Some(PendingState::Removed) => false,
                    None => self.store.contains(id),
                };
                if exists {
                    return Err(ObjectError::DuplicateObject(id).into());
                }
                // A fully-formed insert is the one object path with no
                // sampling step to reject a floor the space does not
                // cover — and an out-of-space floor would permanently
                // grow the per-floor shard vectors.
                if object.floor as usize >= self.space.num_floors() {
                    return Err(EngineError::FloorOutOfSpace {
                        floor: object.floor,
                        num_floors: self.space.num_floors(),
                    });
                }
                // The insert itself is deferred, so reserve the external id
                // now: a later `InsertObjectAt` in this run must allocate
                // past it, exactly as sequential application would after
                // the insert landed.
                Arc::make_mut(&mut self.store).reserve_id(id);
                pending.insert(
                    id,
                    PendingState::Live {
                        radius: object.region.radius,
                        instances: object.len(),
                        floor: object.floor,
                    },
                );
                Ok(Intent::InsertReady(object.clone()))
            }
            Update::InsertObjectAt {
                center,
                floor,
                radius,
                instances,
                seed,
            } => {
                let id = Arc::make_mut(&mut self.store).allocate_id();
                let instances = (*instances).max(1);
                pending.insert(
                    id,
                    PendingState::Live {
                        radius: *radius,
                        instances,
                        floor: *floor,
                    },
                );
                Ok(Intent::SampleInsert(SampleSpec {
                    id,
                    center: *center,
                    floor: *floor,
                    radius: *radius,
                    instances,
                    seed: *seed,
                }))
            }
            Update::MoveObject {
                id,
                center,
                floor,
                seed,
            } => {
                let (radius, instances, old_floor) = match pending.get(id) {
                    Some(PendingState::Removed) => {
                        return Err(ObjectError::UnknownObject(*id).into())
                    }
                    Some(PendingState::Live {
                        radius,
                        instances,
                        floor,
                    }) => (*radius, *instances, *floor),
                    None => {
                        let old = self.store.get(*id)?;
                        (old.region.radius, old.len(), old.floor)
                    }
                };
                pending.insert(
                    *id,
                    PendingState::Live {
                        radius,
                        instances,
                        floor: *floor,
                    },
                );
                Ok(Intent::SampleMove(
                    SampleSpec {
                        id: *id,
                        center: *center,
                        floor: *floor,
                        radius,
                        instances,
                        seed: *seed,
                    },
                    old_floor,
                ))
            }
            Update::RemoveObject(id) => {
                let old_floor = match pending.get(id) {
                    Some(PendingState::Removed) => {
                        return Err(ObjectError::UnknownObject(*id).into())
                    }
                    Some(PendingState::Live { floor, .. }) => *floor,
                    None => self.store.get(*id)?.floor,
                };
                pending.insert(*id, PendingState::Removed);
                Ok(Intent::Remove(*id, old_floor))
            }
            _ => unreachable!("prepare_intent only sees position updates"),
        }
    }

    /// Stages a validated run: groups writes by touched partition, runs
    /// one footprint traversal per group, then executes the deferred
    /// Gaussian draws with each footprint's partitions as the
    /// point-location hint (identical results to full point location, a
    /// fraction of the cost). Sampling can fail — a centre outside every
    /// partition — but nothing is applied until every op is staged.
    fn stage_run(
        &self,
        intents: Vec<Intent>,
        stats: &mut UpdateStats,
    ) -> Result<Vec<PreparedOp>, EngineError> {
        // Sort write indices by (floor, cell): each contiguous key run is
        // one group sharing a traversal.
        let mut keyed: Vec<((Floor, i64, i64), usize)> = intents
            .iter()
            .enumerate()
            .filter_map(|(k, intent)| intent.group_key().map(|key| (key, k)))
            .collect();
        keyed.sort_unstable();
        let mut footprints: Vec<Option<(Vec<UnitId>, Mbr3)>> = Vec::new();
        footprints.resize_with(intents.len(), || None);
        let mut start = 0;
        while start < keyed.len() {
            let key = keyed[start].0;
            let mut end = start + 1;
            while end < keyed.len() && keyed[end].0 == key {
                end += 1;
            }
            let members = &keyed[start..end];
            let mbrs: Vec<Mbr3> = members
                .iter()
                .map(|&(_, k)| {
                    intents[k]
                        .write_mbr(&self.space)
                        .expect("grouped intents write an MBR")
                })
                .collect();
            let grouped = self.index.unit_footprints_grouped(&mbrs);
            stats.footprint_searches += 1;
            for ((&(_, k), units), mbr) in members.iter().zip(grouped).zip(mbrs) {
                footprints[k] = Some((units, mbr));
            }
            start = end;
        }
        intents
            .into_iter()
            .zip(footprints)
            .map(|(intent, footprint)| match intent {
                Intent::InsertReady(object) => {
                    let (units, mbr) = footprint.expect("writes carry a footprint");
                    Ok(PreparedOp::Insert(object, units, mbr))
                }
                Intent::SampleInsert(spec) => {
                    let (units, mbr) = footprint.expect("writes carry a footprint");
                    let object = self.sample_spec(&spec, &units)?;
                    Ok(PreparedOp::Insert(Box::new(object), units, mbr))
                }
                Intent::SampleMove(spec, old_floor) => {
                    let (units, mbr) = footprint.expect("writes carry a footprint");
                    let object = self.sample_spec(&spec, &units)?;
                    Ok(PreparedOp::Move(Box::new(object), units, mbr, old_floor))
                }
                Intent::Remove(id, floor) => Ok(PreparedOp::Remove(id, floor)),
            })
            .collect()
    }

    /// Executes one deferred Gaussian draw, point-locating against the
    /// partitions owning the footprint's units (a superset of every
    /// partition overlapping the region, so the draw is exact).
    fn sample_spec(
        &self,
        spec: &SampleSpec,
        units: &[UnitId],
    ) -> Result<UncertainObject, EngineError> {
        let mut hint: Vec<_> = units
            .iter()
            .filter_map(|&u| self.index.units().partition_of(u))
            .collect();
        hint.sort_unstable();
        hint.dedup();
        let sampler = GaussianSampler {
            instances: spec.instances,
            ..GaussianSampler::default()
        };
        let mut rng = StdRng::seed_from_u64(spec.seed ^ spec.id.0);
        Ok(sampler.sample_with_hint(
            spec.id,
            spec.center,
            spec.floor,
            spec.radius,
            &self.space,
            &hint,
            &mut rng,
        )?)
    }

    /// Applies one staged op to the transaction's store + index copies,
    /// recording the floor shard(s) it lands in (the floors carried on
    /// the staged op feed `UpdateStats::shards_touched`; the layers route
    /// by their O(1) directories). The `Arc::make_mut`s on the layer
    /// handles cost a few pointer bumps — the deep copies happen *inside*
    /// the layers, per touched floor shard and changed bucket. By
    /// construction (validation + staging) these layer operations cannot
    /// fail on user input; an error simply aborts the transaction with the
    /// committed version untouched.
    fn apply_object_op(
        &mut self,
        op: PreparedOp,
        floors: &mut BTreeSet<Floor>,
        partitions: &mut BTreeSet<PartitionId>,
    ) -> Result<UpdateOutcome, EngineError> {
        match op {
            PreparedOp::Insert(object, units, mbr) => {
                let id = object.id;
                let radius = object.region.radius;
                floors.insert(object.floor);
                self.note_partitions(&units, partitions);
                Arc::make_mut(&mut self.index).insert_object_prepared(id, units, mbr)?;
                Arc::make_mut(&mut self.store).insert(*object)?;
                self.max_radius = self.max_radius.max(radius);
                Ok(UpdateOutcome::ObjectInserted(id))
            }
            PreparedOp::Move(object, units, mbr, old_floor) => {
                let id = object.id;
                // A cross-floor move touches the old floor's shard too.
                floors.insert(old_floor);
                floors.insert(object.floor);
                // The partitions the object is *leaving* belong to the
                // routing footprint too: capture them before the index
                // forgets the old placement.
                if let Ok(old_units) = self.index.object_layer().units_of(id) {
                    self.note_partitions(old_units, partitions);
                }
                self.note_partitions(&units, partitions);
                Arc::make_mut(&mut self.store).replace_discarding(*object)?;
                Arc::make_mut(&mut self.index).update_object_prepared(id, units, mbr)?;
                Ok(UpdateOutcome::ObjectMoved(id))
            }
            PreparedOp::Remove(id, floor) => {
                floors.insert(floor);
                if let Ok(old_units) = self.index.object_layer().units_of(id) {
                    self.note_partitions(old_units, partitions);
                }
                Arc::make_mut(&mut self.index).remove_object(id)?;
                Arc::make_mut(&mut self.store).discard(id)?;
                Ok(UpdateOutcome::ObjectRemoved(id))
            }
        }
    }

    /// Folds the partitions owning `units` into the batch's routing
    /// footprint.
    fn note_partitions(&self, units: &[UnitId], partitions: &mut BTreeSet<PartitionId>) {
        for &u in units {
            if let Some(p) = self.index.units().partition_of(u) {
                partitions.insert(p);
            }
        }
    }

    /// Applies one topology [`Update`]: the space-layer operation (on the
    /// transaction's space copy), then its events through the index with
    /// the skeleton repair deferred into `skeleton_dirty` (callers
    /// coalesce repairs across a run).
    fn apply_topology_update(
        &mut self,
        update: &Update,
        skeleton_dirty: &mut bool,
    ) -> Result<UpdateOutcome, EngineError> {
        self.space_cloned = true;
        match update {
            Update::OpenDoor(d) => {
                let ev = Arc::make_mut(&mut self.space).open_door(*d)?;
                self.absorb_events(&[ev], skeleton_dirty)?;
                Ok(UpdateOutcome::DoorOpened(*d))
            }
            Update::CloseDoor(d) => {
                let ev = Arc::make_mut(&mut self.space).close_door(*d)?;
                self.absorb_events(&[ev], skeleton_dirty)?;
                Ok(UpdateOutcome::DoorClosed(*d))
            }
            Update::InsertDoor {
                a,
                b,
                position,
                floor,
                direction,
            } => {
                let (id, ev) = Arc::make_mut(&mut self.space)
                    .insert_door(*a, *b, *position, *floor, *direction)?;
                self.absorb_events(&[ev], skeleton_dirty)?;
                Ok(UpdateOutcome::DoorInserted(id))
            }
            Update::InsertPartition(spec) => {
                let (partition, doors, events) =
                    Arc::make_mut(&mut self.space).insert_partition(spec.clone())?;
                self.absorb_events(&events, skeleton_dirty)?;
                Ok(UpdateOutcome::PartitionInserted { partition, doors })
            }
            Update::DeletePartition(p) => {
                let events = Arc::make_mut(&mut self.space).delete_partition(*p)?;
                self.absorb_events(&events, skeleton_dirty)?;
                Ok(UpdateOutcome::PartitionDeleted(*p))
            }
            Update::SplitPartition {
                partition,
                line,
                connecting_door,
            } => {
                let (halves, events) = Arc::make_mut(&mut self.space).split_partition(
                    *partition,
                    *line,
                    *connecting_door,
                )?;
                self.absorb_events(&events, skeleton_dirty)?;
                Ok(UpdateOutcome::PartitionSplit {
                    old: *partition,
                    halves,
                })
            }
            Update::MergePartitions(a, b) => {
                let (merged, events) = Arc::make_mut(&mut self.space).merge_partitions(*a, *b)?;
                self.absorb_events(&events, skeleton_dirty)?;
                Ok(UpdateOutcome::PartitionsMerged { merged })
            }
            _ => unreachable!("apply_topology_update only sees topology updates"),
        }
    }

    fn absorb_events(
        &mut self,
        events: &[TopologyEvent],
        skeleton_dirty: &mut bool,
    ) -> Result<(), EngineError> {
        let index = Arc::make_mut(&mut self.index);
        for ev in events {
            *skeleton_dirty |= index.apply_topology_deferred(&self.space, &self.store, ev)?;
        }
        Ok(())
    }
}

// ---- footprints and conflict detection ------------------------------------

/// What a batch touches, for the sequencer's conflict check. Two batches
/// staged against the same base may commit in one group without
/// re-validation only when their footprints are disjoint; otherwise the
/// later one re-stages against the working state, which restores exact
/// serial semantics.
#[derive(Clone, Debug, Default)]
struct Footprint {
    /// Floors whose shards the batch reads or writes.
    floors: BTreeSet<Floor>,
    /// Object ids the batch names, allocates, or reserves.
    ids: BTreeSet<ObjectId>,
    /// The batch allocated fresh ids (`InsertObjectAt`): which ids it got
    /// depends on the id watermark of the state it staged against.
    allocates: bool,
    /// The batch advances the id watermark when it commits — fresh
    /// allocations, or external-id inserts (the store reserves their id).
    mints: bool,
    /// The batch rewires topology: conflicts with everything.
    topology: bool,
}

impl Footprint {
    fn topology() -> Self {
        Footprint {
            topology: true,
            ..Footprint::default()
        }
    }

    /// The footprint of a staged position run: floors and ids from the
    /// prepared ops (which carry the actual allocated ids and routed
    /// floors), watermark behaviour from the update kinds.
    fn of_run(ops: &[PreparedOp], updates: &[Update]) -> Self {
        let mut fp = Footprint::default();
        for op in ops {
            match op {
                PreparedOp::Insert(o, ..) => {
                    fp.floors.insert(o.floor);
                    fp.ids.insert(o.id);
                }
                PreparedOp::Move(o, _, _, old_floor) => {
                    fp.floors.insert(o.floor);
                    fp.floors.insert(*old_floor);
                    fp.ids.insert(o.id);
                }
                PreparedOp::Remove(id, floor) => {
                    fp.floors.insert(*floor);
                    fp.ids.insert(*id);
                }
            }
        }
        for update in updates {
            match update {
                Update::InsertObjectAt { .. } => {
                    fp.allocates = true;
                    fp.mints = true;
                }
                Update::InsertObject(_) => fp.mints = true,
                _ => {}
            }
        }
        fp
    }

    /// Whether this (staged) footprint conflicts with a footprint that
    /// committed after it staged — i.e. whether its optimistic validation
    /// and preparation may be stale. Conservative in exactly three ways:
    /// topology conflicts with everything; overlapping floors conflict
    /// (shard-local reasoning: validation read the whole floor shard);
    /// and a batch that *allocated* ids conflicts with any batch that
    /// *moved the watermark*, because its allocated ids would differ
    /// under serial execution.
    fn conflicts_with(&self, committed: &Footprint) -> bool {
        if self.topology || committed.topology {
            return true;
        }
        if self.allocates && committed.mints {
            return true;
        }
        if self.floors.iter().any(|f| committed.floors.contains(f)) {
            return true;
        }
        // Id overlap catches cross-floor races on the same object (e.g.
        // two external inserts of one id landing on different floors).
        let (small, large) = if self.ids.len() <= committed.ids.len() {
            (&self.ids, &committed.ids)
        } else {
            (&committed.ids, &self.ids)
        };
        small.iter().any(|id| large.contains(id))
    }

    fn absorb(&mut self, other: &Footprint) {
        self.floors.extend(other.floors.iter().copied());
        self.ids.extend(other.ids.iter().copied());
        self.allocates |= other.allocates;
        self.mints |= other.mints;
        self.topology |= other.topology;
    }
}

// ---- staged batches and the sequencer -------------------------------------

/// One batch after its parallel stage phase, queued for the sequencer.
#[derive(Debug)]
struct StagedBatch {
    /// The original updates — kept so the sequencer can re-stage the
    /// batch if it lost its optimistic race.
    updates: Vec<Update>,
    /// Epoch of the version the batch staged against.
    base_epoch: u64,
    /// The prepared ops (`None` for batches containing topology updates,
    /// which must run serially in the sequencer: topology both observes
    /// and mutates the working geometry, and may legitimately fail).
    ops: Option<Vec<PreparedOp>>,
    /// What the staged ops touch.
    footprint: Footprint,
    /// Counters accumulated by staging (carried into the batch's report
    /// when the fast path applies the staged ops unchanged).
    stats: UpdateStats,
}

/// Result slot a submitter parks on while a sequencer leader commits its
/// batch. No condvar: a submitter blocked on the sequencer lock either
/// finds its slot filled when it acquires (a leader committed it), or
/// finds its entry still queued and leads itself.
#[derive(Debug, Default)]
struct Slot(Mutex<Option<Result<UpdateReport, EngineError>>>);

impl Slot {
    fn take(&self) -> Option<Result<UpdateReport, EngineError>> {
        self.0.lock().expect("result slot lock").take()
    }

    fn fill(&self, result: Result<UpdateReport, EngineError>) {
        *self.0.lock().expect("result slot lock") = Some(result);
    }
}

#[derive(Debug)]
struct PendingEntry {
    staged: StagedBatch,
    slot: Arc<Slot>,
}

/// The sequencer's conflict-detection memory: merged footprints of recent
/// commit groups, epoch-ascending. Covers epochs in
/// `(coverage_floor, current]`; a batch staged at or below the floor
/// re-stages conservatively (its history was evicted).
#[derive(Debug)]
struct SequencerState {
    recent: VecDeque<(u64, Footprint)>,
    coverage_floor: u64,
}

impl SequencerState {
    fn new(epoch: u64) -> Self {
        SequencerState {
            recent: VecDeque::new(),
            coverage_floor: epoch,
        }
    }

    /// Whether anything that committed after `base_epoch` conflicts with
    /// `footprint` (conservatively `true` when the window no longer
    /// reaches back to `base_epoch`).
    fn conflicts_since(&self, base_epoch: u64, footprint: &Footprint) -> bool {
        if base_epoch < self.coverage_floor {
            return true;
        }
        self.recent
            .iter()
            .rev()
            .take_while(|(epoch, _)| *epoch > base_epoch)
            .any(|(_, committed)| footprint.conflicts_with(committed))
    }

    fn note_commit(&mut self, epoch: u64, footprint: Footprint) {
        self.recent.push_back((epoch, footprint));
        while self.recent.len() > RECENT_GROUPS {
            let (evicted, _) = self.recent.pop_front().expect("len > cap > 0");
            self.coverage_floor = evicted;
        }
    }
}

/// State shared by every [`WriteHandle`] clone of one engine: the staged
/// queue and the sequencer.
#[derive(Debug)]
struct WriterCore {
    /// Batches staged and awaiting sequencing. Submitters push without
    /// the sequencer lock; the leader drains.
    queue: Mutex<Vec<PendingEntry>>,
    /// The serial section: whoever holds it orders, conflict-checks,
    /// applies and publishes a group.
    sequencer: Mutex<SequencerState>,
}

// ---- the write handle -----------------------------------------------------

/// A cloneable, `Send + Sync` **writer** handle: the multi-writer
/// counterpart of [`crate::IndoorService`].
///
/// Obtain one from [`crate::IndoorEngine::writer`] and clone it into any
/// number of threads; all clones feed one epoch sequencer, so commits
/// from concurrent writers are totally ordered and each epoch is
/// published with a single atomic swap. Batches submitted concurrently
/// may **coalesce into one commit group** (one epoch, one subscription
/// broadcast): each batch still gets its own [`UpdateReport`] with its
/// own outcomes, delta and per-batch stats, plus its position in the
/// group ([`UpdateReport::offset_in_epoch`]) and the group size
/// ([`UpdateStats::group_batches`]).
///
/// Writer retirement is reference-counted: subscriptions see their
/// stream end when the engine *and* every cloned handle have dropped.
///
/// ```
/// use idq_core::{EngineConfig, IndoorEngine, Update};
/// use idq_geom::{Point2, Rect2};
/// use idq_model::FloorPlanBuilder;
///
/// let mut b = FloorPlanBuilder::new(4.0);
/// b.add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0)).unwrap();
/// let mut engine = IndoorEngine::new(b.finish().unwrap(), EngineConfig::default()).unwrap();
/// let writer = engine.writer();
/// let t = std::thread::spawn(move || {
///     writer
///         .apply(Update::InsertObjectAt {
///             center: Point2::new(5.0, 5.0), floor: 0, radius: 1.0, instances: 4, seed: 1,
///         })
///         .unwrap()
/// });
/// t.join().unwrap();
/// engine.refresh();
/// assert_eq!(engine.store().len(), 1);
/// ```
#[derive(Debug)]
pub struct WriteHandle {
    shared: Arc<Shared>,
    core: Arc<WriterCore>,
    window: Duration,
}

impl Clone for WriteHandle {
    fn clone(&self) -> Self {
        self.shared.add_writer();
        WriteHandle {
            shared: Arc::clone(&self.shared),
            core: Arc::clone(&self.core),
            window: self.window,
        }
    }
}

impl Drop for WriteHandle {
    /// Releases this writer; the last release retires the write side
    /// (subscription streams end, services keep answering on the final
    /// version).
    fn drop(&mut self) {
        self.shared.release_writer();
    }
}

impl WriteHandle {
    /// The engine's own handle (the writer count starts at 1 in the
    /// shared registry, accounting for exactly this handle).
    pub(crate) fn bootstrap(shared: Arc<Shared>) -> Self {
        let epoch = shared.current().epoch;
        WriteHandle {
            shared,
            core: Arc::new(WriterCore {
                queue: Mutex::new(Vec::new()),
                sequencer: Mutex::new(SequencerState::new(epoch)),
            }),
            window: Duration::ZERO,
        }
    }

    /// The epoch of the latest committed version.
    pub fn epoch(&self) -> u64 {
        self.shared.current().epoch
    }

    /// The commit window this handle leads groups with.
    pub fn commit_window(&self) -> Duration {
        self.window
    }

    /// Returns this handle with a **commit window**: when it leads a
    /// commit group it holds the group open for `window` before draining
    /// the queue, so more concurrent submitters coalesce into one epoch
    /// (fewer shard copies, snapshots and broadcasts per batch — higher
    /// throughput, higher latency). The default of zero still group-commits
    /// whatever queued while the previous leader held the sequencer; the
    /// window only *adds* coalescing time. Per-handle: clones keep the
    /// window they were cloned with.
    #[must_use]
    pub fn with_commit_window(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    /// Applies one typed [`Update`] through the sequencer. See
    /// [`WriteHandle::apply_batch`] — this is a one-update batch, and the
    /// cheapest way to issue concurrent small writes (group commit
    /// amortizes the per-epoch costs across every batch in the group).
    pub fn apply(&self, update: Update) -> Result<UpdateOutcome, EngineError> {
        let report = self.apply_batch(std::slice::from_ref(&update))?;
        Ok(report
            .outcomes
            .into_iter()
            .next()
            .expect("one update, one outcome"))
    }

    /// Applies a stream of typed [`Update`]s as **one atomic transaction**,
    /// concurrently with other writers.
    ///
    /// The batch is validated and prepared on the calling thread against
    /// the latest published version (the parallel stage phase), then
    /// ordered by the epoch sequencer. If a conflicting batch committed
    /// in between — overlapping floors, overlapping ids, id allocation
    /// races, or any topology change — the batch is transparently
    /// **re-staged** against the state it actually lands on
    /// ([`UpdateStats::restaged`]), so results are exactly those of a
    /// serial execution in sequencer order. On error nothing committed
    /// (staging failures never enter the sequencer; serial failures drop
    /// the batch from its group).
    ///
    /// Batches submitted while another writer leads coalesce into that
    /// leader's **commit group**: one epoch bump and one subscription
    /// broadcast (carrying the group's merged outcomes and net delta)
    /// cover the whole group, and each batch's own report names the
    /// shared epoch, its offset within it, and its own per-batch stats.
    pub fn apply_batch(&self, updates: &[Update]) -> Result<UpdateReport, EngineError> {
        self.apply_batch_gated(updates, || {})
    }

    /// Test-support entry: like [`WriteHandle::apply_batch`], but calls
    /// `after_stage` between the parallel stage phase and enqueueing for
    /// the sequencer — the window in which a concurrent commit can make
    /// the staged work stale. Deterministic interleaving tests
    /// (`tests/sequencer_interleavings.rs`) use it to force the
    /// stage/publish race.
    #[doc(hidden)]
    pub fn apply_batch_gated(
        &self,
        updates: &[Update],
        after_stage: impl FnOnce(),
    ) -> Result<UpdateReport, EngineError> {
        if updates.is_empty() {
            // A committed no-op: nothing to stage, sequence or publish.
            return Ok(UpdateReport {
                outcomes: Vec::new(),
                delta: DeltaBuilder::default().finish(),
                epoch: self.shared.current().epoch,
                stats: UpdateStats::default(),
                offset_in_epoch: 0,
            });
        }
        let staged = stage_batch(&self.shared.current(), updates)?;
        after_stage();
        let slot = Arc::new(Slot::default());
        self.core
            .queue
            .lock()
            .expect("staged-batch queue lock")
            .push(PendingEntry {
                staged,
                slot: Arc::clone(&slot),
            });
        let mut seq = self.core.sequencer.lock().expect("sequencer lock");
        if let Some(result) = slot.take() {
            // A leader drained and committed this batch as part of its
            // group while we waited for the lock.
            return result;
        }
        self.lead(&mut seq);
        drop(seq);
        slot.take()
            .expect("the leader settles every batch it drains, including its own")
    }

    /// The serial section: drain the queue, settle every batch in order
    /// (conflict-check, optionally re-stage, apply), publish one epoch
    /// for the group, fill every slot.
    fn lead(&self, seq: &mut SequencerState) {
        if !self.window.is_zero() {
            // Hold the group open: submitters enqueue without the
            // sequencer lock, so everything arriving within the window
            // coalesces into this commit.
            std::thread::sleep(self.window);
        }
        let entries =
            std::mem::take(&mut *self.core.queue.lock().expect("staged-batch queue lock"));
        debug_assert!(!entries.is_empty(), "a leader always has its own entry");
        let base = self.shared.current();
        let mut txn = Txn::begin(&base);
        let mut committed: Vec<(Arc<Slot>, BatchState, Vec<Update>)> = Vec::new();
        let mut applied: Vec<Footprint> = Vec::new();
        for PendingEntry { staged, slot } in entries {
            match settle(&mut txn, seq, &applied, staged) {
                Ok((batch, footprint, updates)) => {
                    applied.push(footprint);
                    committed.push((slot, batch, updates));
                }
                Err(e) => slot.fill(Err(e)),
            }
        }
        if committed.is_empty() {
            // Every batch in the group failed: nothing to publish, the
            // epoch does not move.
            return;
        }

        let epoch = base.epoch + 1;
        let next = Arc::new(EngineState {
            space: txn.space,
            store: txn.store,
            index: txn.index,
            options: base.options,
            max_radius: txn.max_radius,
            epoch,
        });

        // The durability hook: the whole group's batches land in the WAL
        // — one record per batch, in offset order, under the group's
        // epoch — *before* anything publishes or the sequencer's conflict
        // ring learns of the commit. A failed append fails every batch in
        // the group and the epoch never moves: in-memory state stays
        // exactly as durable state, and nothing conflicting was recorded
        // against an epoch that does not exist.
        if let Some(durability) = self.shared.durability() {
            let payloads: Vec<Vec<u8>> = committed
                .iter()
                .map(|(_, batch, updates)| {
                    let inserted: Vec<ObjectId> = batch
                        .outcomes
                        .iter()
                        .filter_map(UpdateOutcome::inserted_object)
                        .collect();
                    let mut buf = Vec::new();
                    crate::wire::put_batch_parts(&mut buf, updates, &inserted);
                    buf
                })
                .collect();
            if let Err(e) = durability.log_group(epoch, &payloads) {
                for (slot, ..) in committed {
                    slot.fill(Err(e.clone()));
                }
                return;
            }
        }

        let mut group_footprint = Footprint::default();
        for footprint in &applied {
            group_footprint.absorb(footprint);
        }
        seq.note_commit(epoch, group_footprint);

        // Per-batch reports carry each batch's own outcomes, delta and
        // stats (its own floors and checkpoint flag — not the group's);
        // the merged broadcast report carries the group's concatenated
        // outcomes, net delta, and union stats.
        let group_batches = committed.len();
        let mut merged_outcomes = Vec::new();
        let mut merged_delta = DeltaBuilder::default();
        let mut merged_stats = UpdateStats::default();
        let mut merged_floors: BTreeSet<Floor> = BTreeSet::new();
        let mut merged_partitions: BTreeSet<PartitionId> = BTreeSet::new();
        let mut reports: Vec<(Arc<Slot>, UpdateReport)> = Vec::with_capacity(group_batches);
        for (offset, (slot, batch, _)) in committed.into_iter().enumerate() {
            merged_stats.absorb_group_member(&batch.stats);
            merged_floors.extend(batch.floors.iter().copied());
            merged_partitions.extend(batch.partitions.iter().copied());
            for outcome in &batch.outcomes {
                merged_delta.record(outcome);
                merged_outcomes.push(outcome.clone());
            }
            let mut stats = batch.stats;
            stats.group_batches = group_batches;
            stats.shards_touched = batch.floors.len();
            let mut delta = batch.delta.finish();
            delta.floors = batch.floors.into_iter().collect();
            delta.partitions = batch.partitions.into_iter().collect();
            reports.push((
                slot,
                UpdateReport {
                    outcomes: batch.outcomes,
                    delta,
                    epoch,
                    stats,
                    offset_in_epoch: offset,
                },
            ));
        }
        merged_stats.shards_touched = merged_floors.len();
        let mut delta = merged_delta.finish();
        delta.floors = merged_floors.into_iter().collect();
        delta.partitions = merged_partitions.into_iter().collect();
        let merged = UpdateReport {
            outcomes: merged_outcomes,
            delta,
            epoch,
            stats: merged_stats,
            offset_in_epoch: 0,
        };

        self.shared.publish(Arc::clone(&next));
        let snapshot = Snapshot::from_state(Arc::clone(&next), next.effective_options());
        self.shared.broadcast(&merged, &snapshot);
        // The retention hook: hand the merged group report, a pinned
        // snapshot and the stamps to the attached history sink. Same
        // never-block discipline as `broadcast` — the sink only enqueues;
        // compression, trajectory indexing and eviction run on its own
        // thread.
        if let Some(sink) = self.shared.retention() {
            let wall_ms = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0);
            sink.record(crate::retention::CommitRecord {
                epoch,
                wall_ms,
                report: merged,
                snapshot: snapshot.clone(),
            });
        }
        for (slot, report) in reports {
            slot.fill(Ok(report));
        }
        // After publish: hand the pinned new version to the background
        // checkpoint worker if one is due. Never blocks this leader.
        if let Some(durability) = self.shared.durability() {
            durability.maybe_checkpoint(&next);
        }
    }
}

/// The parallel stage phase: validate + prepare one batch against a
/// published version, on the submitting thread, with no locks held.
/// Batches containing topology updates are marked serial instead (the
/// sequencer runs them with classic all-or-nothing transaction
/// semantics).
fn stage_batch(base: &Arc<EngineState>, updates: &[Update]) -> Result<StagedBatch, EngineError> {
    let mut stats = UpdateStats {
        updates: updates.len(),
        ..UpdateStats::default()
    };
    if updates.iter().any(Update::is_topology) {
        return Ok(StagedBatch {
            updates: updates.to_vec(),
            base_epoch: base.epoch,
            ops: None,
            footprint: Footprint::topology(),
            stats,
        });
    }
    let mut stager = Txn::begin(base);
    let ops = stager.stage_position_run(updates, &mut stats)?;
    let footprint = Footprint::of_run(&ops, updates);
    Ok(StagedBatch {
        updates: updates.to_vec(),
        base_epoch: base.epoch,
        ops: Some(ops),
        footprint,
        stats,
    })
}

/// Settles one batch inside the serial section: serial (topology) batches
/// run as a classic transaction on a clone of the working state; staged
/// position batches apply their prepared ops directly — after a conflict
/// check against everything that committed since they staged (and against
/// earlier members of this group), re-staging when they lost the race.
/// Returns the batch's original updates alongside its results: the
/// leader's durability hook logs exactly what settled, in settle order.
fn settle(
    txn: &mut Txn,
    seq: &SequencerState,
    applied: &[Footprint],
    staged: StagedBatch,
) -> Result<(BatchState, Footprint, Vec<Update>), EngineError> {
    let StagedBatch {
        updates,
        base_epoch,
        ops,
        footprint,
        stats,
    } = staged;
    let Some(ops) = ops else {
        // Topology (or mixed) batch: must observe and mutate the group's
        // working geometry, and may legitimately fail — run it on a clone
        // so a failure drops out of the group structurally.
        let mut attempt = txn.clone();
        let mut batch = BatchState::default();
        attempt.run_batch(&updates, &mut batch)?;
        batch.stats.checkpointed = true;
        batch.stats.shards_touched = batch.floors.len();
        *txn = attempt;
        return Ok((batch, Footprint::topology(), updates));
    };
    let lost_race = seq.conflicts_since(base_epoch, &footprint)
        || applied.iter().any(|fp| footprint.conflicts_with(fp));
    let (ops, stats, footprint) = if lost_race {
        // Re-stage against the state the batch actually lands on: full
        // re-validation and re-preparation, exactly as if it had been
        // submitted serially at this point in the order. The staging
        // clone is discarded; only the re-staged ops touch the working
        // transaction.
        let mut stager = txn.clone();
        let mut stats = UpdateStats {
            updates: updates.len(),
            restaged: true,
            ..UpdateStats::default()
        };
        let ops = stager.stage_position_run(&updates, &mut stats)?;
        let footprint = Footprint::of_run(&ops, &updates);
        (ops, stats, footprint)
    } else {
        (ops, stats, footprint)
    };
    let mut batch = BatchState {
        stats,
        ..BatchState::default()
    };
    for op in ops {
        let outcome = txn
            .apply_object_op(op, &mut batch.floors, &mut batch.partitions)
            .expect("staged ops apply cleanly to the state they were validated against");
        batch.delta.record(&outcome);
        batch.outcomes.push(outcome);
    }
    Ok((batch, footprint, updates))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(floors: &[Floor], ids: &[u64]) -> Footprint {
        Footprint {
            floors: floors.iter().copied().collect(),
            ids: ids.iter().map(|&i| ObjectId(i)).collect(),
            ..Footprint::default()
        }
    }

    #[test]
    fn footprint_conflict_rules() {
        // Disjoint floors and ids: no conflict.
        assert!(!fp(&[0], &[1]).conflicts_with(&fp(&[1], &[2])));
        // Shared floor conflicts even with disjoint ids.
        assert!(fp(&[0], &[1]).conflicts_with(&fp(&[0], &[2])));
        // Shared id conflicts even across disjoint floors (the same
        // external id raced onto two floors).
        assert!(fp(&[0], &[7]).conflicts_with(&fp(&[1], &[7])));
        // Topology conflicts with everything, both ways.
        assert!(Footprint::topology().conflicts_with(&fp(&[3], &[9])));
        assert!(fp(&[3], &[9]).conflicts_with(&Footprint::topology()));
        // An allocating batch conflicts with any watermark move…
        let alloc = Footprint {
            allocates: true,
            mints: true,
            ..fp(&[0], &[5])
        };
        let mint = Footprint {
            mints: true,
            ..fp(&[1], &[6])
        };
        assert!(alloc.conflicts_with(&mint));
        // …but a non-allocating batch does not care about the watermark.
        assert!(!mint.conflicts_with(&fp(&[2], &[8])));
        assert!(!fp(&[2], &[8]).conflicts_with(&mint));
    }

    #[test]
    fn sequencer_window_is_conservative_beyond_coverage() {
        let mut seq = SequencerState::new(0);
        // Nothing committed yet: nothing conflicts.
        assert!(!seq.conflicts_since(0, &fp(&[0], &[1])));
        seq.note_commit(1, fp(&[0], &[1]));
        seq.note_commit(2, fp(&[1], &[2]));
        // Staged at epoch 1: only the epoch-2 commit is "since".
        assert!(!seq.conflicts_since(1, &fp(&[0], &[1])));
        assert!(seq.conflicts_since(1, &fp(&[1], &[9])));
        // Staged at the current epoch: nothing is "since".
        assert!(!seq.conflicts_since(2, &fp(&[1], &[2])));
        // Evict past the window: old bases become conservative conflicts.
        for e in 3..(RECENT_GROUPS as u64 + 10) {
            seq.note_commit(e, fp(&[2], &[3]));
        }
        assert!(seq.coverage_floor > 0);
        assert!(
            seq.conflicts_since(0, &fp(&[9], &[99])),
            "evicted history must force a re-stage"
        );
        assert!(!seq.conflicts_since(seq.coverage_floor, &fp(&[9], &[99])));
    }

    #[test]
    fn staged_batches_cross_threads() {
        // The whole pipeline hinges on staging on one thread and applying
        // on another: a field change that loses `Send` must fail here.
        const fn assert_send<T: Send>() {}
        assert_send::<StagedBatch>();
        assert_send::<PreparedOp>();
        assert_send::<PendingEntry>();
        assert_send::<WriteHandle>();
    }
}
