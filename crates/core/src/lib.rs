//! `IndoorEngine` — the integrated public API of the reproduction.
//!
//! The engine owns the three mutable parts of the system — the
//! [`idq_model::IndoorSpace`], the [`idq_objects::ObjectStore`] and the
//! [`idq_index::CompositeIndex`] — and
//! keeps them consistent across object updates and topology updates, so a
//! downstream application only talks to one object:
//!
//! ```
//! use idq_core::{EngineConfig, IndoorEngine};
//! use idq_geom::{Point2, Rect2};
//! use idq_model::{FloorPlanBuilder, IndoorPoint};
//!
//! let mut b = FloorPlanBuilder::new(4.0);
//! let a = b.add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0)).unwrap();
//! let c = b.add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0)).unwrap();
//! b.add_door_between(a, c, Point2::new(10.0, 5.0)).unwrap();
//!
//! let mut engine = IndoorEngine::new(b.finish().unwrap(), EngineConfig::default()).unwrap();
//! let id = engine.insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 42).unwrap();
//! let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
//! let out = engine.range_query(q, 30.0).unwrap();
//! assert_eq!(out.results[0].object, id);
//! let knn = engine.knn(q, 1).unwrap();
//! assert_eq!(knn.results[0].object, id);
//! ```

pub mod engine;
pub mod error;

pub use engine::{EngineConfig, IndoorEngine};
pub use error::EngineError;
