//! `IndoorEngine` — the integrated public API of the reproduction.
//!
//! The engine owns the three mutable parts of the system — the
//! [`idq_model::IndoorSpace`], the [`idq_objects::ObjectStore`] and the
//! [`idq_index::CompositeIndex`] — and
//! keeps them consistent across object updates and topology updates, so a
//! downstream application only talks to one object. Queries run through a
//! [`EngineSnapshot`]: a cheap, consistent read view executing typed
//! [`idq_query::Query`]s one at a time or batched with cross-query reuse:
//!
//! ```
//! use idq_core::{EngineConfig, IndoorEngine};
//! use idq_geom::{Point2, Rect2};
//! use idq_model::{FloorPlanBuilder, IndoorPoint};
//! use idq_query::{Outcome, Query};
//!
//! let mut b = FloorPlanBuilder::new(4.0);
//! let a = b.add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0)).unwrap();
//! let c = b.add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0)).unwrap();
//! b.add_door_between(a, c, Point2::new(10.0, 5.0)).unwrap();
//!
//! let mut engine = IndoorEngine::new(b.finish().unwrap(), EngineConfig::default()).unwrap();
//! let id = engine.insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 42).unwrap();
//! let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
//!
//! // One snapshot answers a whole wave of queries consistently; sharing
//! // the query point shares one door-distance Dijkstra across them.
//! let snapshot = engine.snapshot();
//! let outcomes = snapshot
//!     .execute_batch(&[Query::Range { q, r: 30.0 }, Query::Knn { q, k: 1 }])
//!     .unwrap();
//! assert_eq!(outcomes[0].as_range().unwrap().results[0].object, id);
//! assert_eq!(outcomes[1].as_knn().unwrap().results[0].object, id);
//!
//! // The pre-session convenience methods remain as thin delegations.
//! assert_eq!(engine.range_query(q, 30.0).unwrap().results[0].object, id);
//! ```
//!
//! Writes mirror the read side: typed [`Update`]s through
//! [`IndoorEngine::apply`], or whole streams through
//! [`IndoorEngine::apply_batch`] — one atomic transaction whose
//! [`UpdateReport`] feeds standing monitors via [`MonitorExt::absorb`]:
//!
//! ```
//! use idq_core::{EngineConfig, IndoorEngine, MonitorExt, Update};
//! use idq_geom::{Point2, Rect2};
//! use idq_model::{FloorPlanBuilder, IndoorPoint};
//! use idq_query::{QueryOptions, RangeMonitor};
//!
//! let mut b = FloorPlanBuilder::new(4.0);
//! let a = b.add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0)).unwrap();
//! let c = b.add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0)).unwrap();
//! b.add_door_between(a, c, Point2::new(10.0, 5.0)).unwrap();
//! let mut engine = IndoorEngine::new(b.finish().unwrap(), EngineConfig::default()).unwrap();
//!
//! let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
//! let mut monitor = RangeMonitor::new(q, 12.0, QueryOptions::default()).unwrap();
//! monitor.refresh_on(&engine.snapshot()).unwrap();
//!
//! // One atomic, amortized transaction; one epoch bump.
//! let report = engine
//!     .apply_batch(&[
//!         Update::InsertObjectAt {
//!             center: Point2::new(8.0, 5.0), floor: 0, radius: 1.0, instances: 8, seed: 1,
//!         },
//!         Update::InsertObjectAt {
//!             center: Point2::new(18.0, 5.0), floor: 0, radius: 1.0, instances: 8, seed: 2,
//!         },
//!     ])
//!     .unwrap();
//! assert_eq!(report.delta.inserted.len(), 2);
//! assert_eq!(engine.snapshot().version(), report.epoch);
//!
//! // The monitor re-evaluates exactly what the delta names.
//! let changes = monitor.absorb(&report, &engine.snapshot()).unwrap();
//! assert_eq!(changes.len(), 1); // only the near object entered
//! ```

pub mod engine;
pub mod error;
pub mod monitor;
pub mod snapshot;
pub mod update;

pub use engine::{EngineConfig, IndoorEngine};
pub use error::EngineError;
pub use monitor::MonitorExt;
pub use snapshot::EngineSnapshot;
pub use update::{Update, UpdateDelta, UpdateOutcome, UpdateReport, UpdateStats};
