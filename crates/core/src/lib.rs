//! `IndoorEngine` — the integrated public API of the reproduction, served
//! concurrently.
//!
//! The engine fronts a **multi-writer** MVCC service: its state — the
//! [`idq_model::IndoorSpace`], the [`idq_objects::ObjectStore`] and the
//! [`idq_index::CompositeIndex`] — lives in an immutable, `Arc`-shared
//! [`EngineState`], and every committed write publishes a *new* version
//! via an epoch-stamped atomic swap (copy-on-write of the touched
//! layers). Concurrent writers clone a [`WriteHandle`]
//! ([`IndoorEngine::writer`]): batches stage in parallel on their
//! submitting threads, an epoch sequencer orders and conflict-checks
//! them, and concurrent submissions **group-commit** into shared epochs
//! (see [`mod@write`]). Reads go through owned [`Snapshot`]s pinned to a version:
//! `Clone + Send + Sync`, so any number of threads execute typed
//! [`idq_query::Query`] sessions in parallel with an active writer, with
//! no locks held during evaluation:
//!
//! ```
//! use idq_core::{EngineConfig, IndoorEngine};
//! use idq_geom::{Point2, Rect2};
//! use idq_model::{FloorPlanBuilder, IndoorPoint};
//! use idq_query::{Outcome, Query};
//!
//! let mut b = FloorPlanBuilder::new(4.0);
//! let a = b.add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0)).unwrap();
//! let c = b.add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0)).unwrap();
//! b.add_door_between(a, c, Point2::new(10.0, 5.0)).unwrap();
//!
//! let mut engine = IndoorEngine::new(b.finish().unwrap(), EngineConfig::default()).unwrap();
//! let id = engine.insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 42).unwrap();
//! let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
//!
//! // One snapshot answers a whole wave of queries consistently; sharing
//! // the query point shares one door-distance Dijkstra across them. The
//! // snapshot is owned: clone it, send it to other threads, keep it —
//! // it stays pinned to its version while the writer commits.
//! let snapshot = engine.snapshot();
//! let outcomes = snapshot
//!     .execute_batch(&[Query::Range { q, r: 30.0 }, Query::Knn { q, k: 1 }])
//!     .unwrap();
//! assert_eq!(outcomes[0].as_range().unwrap().results[0].object, id);
//! assert_eq!(outcomes[1].as_knn().unwrap().results[0].object, id);
//!
//! // Reader threads use a service handle instead of borrowing the engine.
//! let service = engine.service();
//! let worker = std::thread::spawn(move || {
//!     service.execute(&Query::Range { q, r: 30.0 }).unwrap()
//! });
//! engine.insert_object_at(Point2::new(18.0, 5.0), 0, 1.0, 8, 43).unwrap();
//! worker.join().unwrap();
//!
//! // The pre-session convenience methods remain as thin delegations.
//! assert_eq!(engine.range_query(q, 30.0).unwrap().results[0].object, id);
//! ```
//!
//! Writes mirror the read side: typed [`Update`]s through
//! [`IndoorEngine::apply`], or whole streams through
//! [`IndoorEngine::apply_batch`] — one atomic transaction whose
//! [`UpdateReport`] feeds standing queries. The first-class form of a
//! standing query is a [`Subscription`]
//! ([`IndoorService::subscribe`]): it yields the initial result at its
//! baseline epoch and one delta [`Notification`] per commit:
//!
//! ```
//! use idq_core::{EngineConfig, IndoorEngine, Update};
//! use idq_geom::{Point2, Rect2};
//! use idq_model::{FloorPlanBuilder, IndoorPoint};
//! use idq_query::Query;
//!
//! let mut b = FloorPlanBuilder::new(4.0);
//! let a = b.add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0)).unwrap();
//! let c = b.add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0)).unwrap();
//! b.add_door_between(a, c, Point2::new(10.0, 5.0)).unwrap();
//! let mut engine = IndoorEngine::new(b.finish().unwrap(), EngineConfig::default()).unwrap();
//!
//! let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
//! let mut sub = engine.service().subscribe(Query::Range { q, r: 12.0 }).unwrap();
//! assert!(sub.initial().is_empty());
//!
//! // One atomic, amortized transaction; one epoch bump; one notification.
//! engine
//!     .apply_batch(&[
//!         Update::InsertObjectAt {
//!             center: Point2::new(8.0, 5.0), floor: 0, radius: 1.0, instances: 8, seed: 1,
//!         },
//!         Update::InsertObjectAt {
//!             center: Point2::new(18.0, 5.0), floor: 0, radius: 1.0, instances: 8, seed: 2,
//!         },
//!     ])
//!     .unwrap();
//! let n = sub.wait().unwrap().expect("one commit");
//! assert_eq!(n.changes.len(), 1); // only the near object entered
//! assert_eq!(sub.epoch(), engine.epoch());
//! ```

pub mod durability;
pub mod engine;
pub mod error;
pub mod monitor;
pub mod retention;
pub mod service;
pub mod snapshot;
pub mod state;
pub mod update;
pub mod wire;
pub mod write;

pub use durability::DurabilityOptions;
pub use engine::{EngineConfig, IndoorEngine};
pub use error::EngineError;
pub use monitor::MonitorExt;
pub use retention::{CommitRecord, RetentionSink};
pub use service::{IndoorService, Notification, Subscription};
pub use snapshot::Snapshot;
pub use state::EngineState;
pub use update::{Update, UpdateDelta, UpdateOutcome, UpdateReport, UpdateStats};
pub use write::WriteHandle;
