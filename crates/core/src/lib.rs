//! `IndoorEngine` — the integrated public API of the reproduction.
//!
//! The engine owns the three mutable parts of the system — the
//! [`idq_model::IndoorSpace`], the [`idq_objects::ObjectStore`] and the
//! [`idq_index::CompositeIndex`] — and
//! keeps them consistent across object updates and topology updates, so a
//! downstream application only talks to one object. Queries run through a
//! [`EngineSnapshot`]: a cheap, consistent read view executing typed
//! [`idq_query::Query`]s one at a time or batched with cross-query reuse:
//!
//! ```
//! use idq_core::{EngineConfig, IndoorEngine};
//! use idq_geom::{Point2, Rect2};
//! use idq_model::{FloorPlanBuilder, IndoorPoint};
//! use idq_query::{Outcome, Query};
//!
//! let mut b = FloorPlanBuilder::new(4.0);
//! let a = b.add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0)).unwrap();
//! let c = b.add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0)).unwrap();
//! b.add_door_between(a, c, Point2::new(10.0, 5.0)).unwrap();
//!
//! let mut engine = IndoorEngine::new(b.finish().unwrap(), EngineConfig::default()).unwrap();
//! let id = engine.insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 42).unwrap();
//! let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
//!
//! // One snapshot answers a whole wave of queries consistently; sharing
//! // the query point shares one door-distance Dijkstra across them.
//! let snapshot = engine.snapshot();
//! let outcomes = snapshot
//!     .execute_batch(&[Query::Range { q, r: 30.0 }, Query::Knn { q, k: 1 }])
//!     .unwrap();
//! assert_eq!(outcomes[0].as_range().unwrap().results[0].object, id);
//! assert_eq!(outcomes[1].as_knn().unwrap().results[0].object, id);
//!
//! // The pre-session convenience methods remain as thin delegations.
//! assert_eq!(engine.range_query(q, 30.0).unwrap().results[0].object, id);
//! ```

pub mod engine;
pub mod error;
pub mod snapshot;

pub use engine::{EngineConfig, IndoorEngine};
pub use error::EngineError;
pub use snapshot::EngineSnapshot;
