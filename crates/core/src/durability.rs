//! The engine's durability layer: WAL group logging, background epoch
//! checkpoints, and the shutdown flush.
//!
//! A durable engine threads every commit group through the crate-private
//! `Durability` handle **before** the sequencer publishes the epoch swap: the group's batches
//! are serialized ([`crate::wire::put_batch_parts`]) and appended to the
//! write-ahead log as one record per batch, all stamped with the group's
//! epoch, and the configured [`SyncPolicy`] decides when the bytes are
//! forced to stable storage. Only after the append succeeds does the
//! group publish — so a recovered engine never exposes an epoch the log
//! does not fully cover, and a crash between append and publish merely
//! recovers *ahead* of what the dying process acknowledged (a documented
//! one-way discrepancy; the reverse — acknowledged but lost — cannot
//! happen under `always`/`group` sync).
//!
//! Checkpoints run on a background worker thread: the committing writer
//! hands it a pinned [`EngineState`] `Arc` (MVCC's immutable versions
//! make "snapshot while writers proceed" free — the worker encodes from
//! a version nothing will ever mutate), and the worker streams the
//! encoded space + store + high-water marks to the backend, publishes
//! the checkpoint atomically, then truncates every log segment the
//! checkpoint made redundant. Writers never wait: the only shared state
//! the worker touches is the WAL mutex, briefly, for the truncation.
//!
//! A durability failure is **fail-stop**: the failing group reports
//! [`EngineError::Storage`] to every batch in it, does not publish, and
//! *permanently poisons* the attachment — every later commit fails with
//! the same error. The latch is load-bearing, not just tidy semantics: a
//! failed append (ENOSPC, EIO, a failed fsync whose bytes still reach
//! disk through the page cache) may have left records of the
//! never-published epoch in the log, and because the epoch did not move,
//! a retried commit would append the *same* epoch again. Recovery groups
//! consecutive same-epoch records into one atomic batch, so it would
//! replay updates that were reported as failed to clients. Once poisoned,
//! no later group can reuse the epoch, and recovery replays at most the
//! failed group's own (unacknowledged) residue — the documented
//! recover-*ahead* discrepancy, never divergence. A background checkpoint
//! failure latches the same way and surfaces on the next commit.

use crate::error::EngineError;
use crate::state::EngineState;
use idq_storage::{latest_checkpoint, write_checkpoint, StorageBackend, SyncPolicy, Wal};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Configuration of a durable engine's storage behaviour.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityOptions {
    /// When WAL appends are forced to stable storage. The default,
    /// [`SyncPolicy::Group`], syncs once per commit group — group commit
    /// amortizes the fsync exactly like it amortizes the epoch swap.
    pub sync: SyncPolicy,
    /// Epochs between background checkpoints (a checkpoint is considered
    /// due when the committed epoch is at least this far past the last
    /// checkpointed one). `0` disables automatic checkpoints — the log
    /// grows until [`crate::IndoorEngine::checkpoint`] is called.
    pub checkpoint_every: u64,
    /// Size at which the WAL rotates to a fresh segment file. Rotation
    /// happens only at group boundaries; smaller segments mean finer
    /// truncation granularity after checkpoints.
    pub segment_bytes: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            sync: SyncPolicy::Group,
            checkpoint_every: 1024,
            segment_bytes: 8 * 1024 * 1024,
        }
    }
}

/// State shared between the committing writers and the checkpoint worker.
#[derive(Debug)]
struct DurabilityCore {
    backend: Arc<dyn StorageBackend>,
    wal: Mutex<Wal>,
    /// Epoch of the newest durable checkpoint.
    last_checkpoint: AtomicU64,
    /// A background checkpoint is in flight (at most one at a time).
    inflight: AtomicBool,
    /// Serializes [`DurabilityCore::checkpoint_state`] across the worker
    /// and blocking callers, so two checkpointers never stream the same
    /// `.tmp` or interleave publish/GC.
    checkpoint_lock: Mutex<()>,
    /// The durability failure that fail-stopped this engine, if any.
    /// Latched permanently: a failed WAL append may have left records of
    /// the never-published epoch in the log, so no later commit may run
    /// (it would reuse that epoch and recovery would replay the failed
    /// group). Every subsequent [`Durability::log_group`] returns a clone.
    poisoned: Mutex<Option<EngineError>>,
}

impl DurabilityCore {
    fn storage_error(&self, epoch: u64, cause: idq_storage::StorageError) -> EngineError {
        EngineError::Storage {
            path: self.backend.label(),
            epoch,
            cause,
        }
    }

    /// Writes one checkpoint of `state` and truncates the log prefix it
    /// covers. Runs on the worker thread *and* on blocking
    /// [`Durability::checkpoint_now`] callers; `checkpoint_lock`
    /// serializes the two (they could otherwise stream the same-epoch
    /// `.tmp` concurrently, or one's post-publish GC could delete the
    /// other's in-flight `.tmp` and fail its rename). Blocking a
    /// checkpoint caller on an in-flight checkpoint never blocks
    /// committing writers.
    fn checkpoint_state(&self, state: &EngineState) -> Result<u64, EngineError> {
        let _serialize = self.checkpoint_lock.lock().expect("checkpoint lock");
        let epoch = state.epoch;
        let payload = state.encode_checkpoint();
        write_checkpoint(&self.backend, epoch, &payload)
            .map_err(|e| self.storage_error(epoch, e))?;
        self.last_checkpoint.fetch_max(epoch, Ordering::SeqCst);
        // Everything at or below the checkpointed epoch is now redundant;
        // drop the sealed segments it fully covers. Failure here loses
        // nothing but disk space.
        self.wal
            .lock()
            .expect("wal lock")
            .truncate_below(epoch)
            .map_err(|e| self.storage_error(epoch, e))?;
        Ok(epoch)
    }
}

/// The engine's durability attachment: owns the WAL and the checkpoint
/// worker. Lives in the service's `Shared` once attached; dropped (worker
/// joined) when the last handle on the engine goes away.
#[derive(Debug)]
pub(crate) struct Durability {
    core: Arc<DurabilityCore>,
    options: DurabilityOptions,
    /// Hand-off to the checkpoint worker; dropping it stops the worker.
    tx: Option<mpsc::Sender<Arc<EngineState>>>,
    worker: Option<JoinHandle<()>>,
}

impl Durability {
    /// Opens the WAL on `backend` and starts the checkpoint worker.
    /// Returns the durability attachment plus the decoded log records that
    /// survived (epoch-ordered, torn tail already truncated) for the
    /// caller to replay.
    pub(crate) fn open(
        backend: Arc<dyn StorageBackend>,
        options: DurabilityOptions,
        checkpoint_epoch: u64,
    ) -> Result<(Self, Vec<idq_storage::WalRecord>), EngineError> {
        let label = backend.label();
        let (wal, records) = Wal::open(Arc::clone(&backend), options.sync, options.segment_bytes)
            .map_err(|cause| EngineError::Recovery {
            path: label,
            epoch: checkpoint_epoch,
            cause,
        })?;
        let core = Arc::new(DurabilityCore {
            backend,
            wal: Mutex::new(wal),
            last_checkpoint: AtomicU64::new(checkpoint_epoch),
            inflight: AtomicBool::new(false),
            checkpoint_lock: Mutex::new(()),
            poisoned: Mutex::new(None),
        });
        let (tx, rx) = mpsc::channel::<Arc<EngineState>>();
        let worker_core = Arc::clone(&core);
        let worker = std::thread::Builder::new()
            .name("idq-checkpoint".into())
            .spawn(move || {
                while let Ok(state) = rx.recv() {
                    if let Err(e) = worker_core.checkpoint_state(&state) {
                        // First failure wins; latch it permanently.
                        worker_core
                            .poisoned
                            .lock()
                            .expect("poison lock")
                            .get_or_insert(e);
                    }
                    worker_core.inflight.store(false, Ordering::SeqCst);
                }
            })
            .expect("spawn checkpoint worker");
        Ok((
            Durability {
                core,
                options,
                tx: Some(tx),
                worker: Some(worker),
            },
            records,
        ))
    }

    /// Appends one commit group — one encoded record per batch, all under
    /// `epoch` — durably per the sync policy. Called by the sequencer
    /// leader **before** publishing the epoch; an error means the group
    /// must not publish. Fail-stop: the first failure (an append here, or
    /// a background checkpoint) poisons the attachment permanently and
    /// every later group fails with it — a failed append may have left
    /// this epoch's records in the log, so letting a later group reuse
    /// the epoch would make recovery replay the failed group.
    pub(crate) fn log_group(&self, epoch: u64, payloads: &[Vec<u8>]) -> Result<(), EngineError> {
        let mut poisoned = self.core.poisoned.lock().expect("poison lock");
        if let Some(e) = poisoned.as_ref() {
            return Err(e.clone());
        }
        let result = self
            .core
            .wal
            .lock()
            .expect("wal lock")
            .append_commit(epoch, payloads)
            .map_err(|e| self.core.storage_error(epoch, e));
        if let Err(e) = &result {
            *poisoned = Some(e.clone());
        }
        result
    }

    /// Hands `state` to the background worker when a checkpoint is due
    /// and none is in flight. Never blocks the committing writer.
    pub(crate) fn maybe_checkpoint(&self, state: &Arc<EngineState>) {
        if self.options.checkpoint_every == 0 {
            return;
        }
        let last = self.core.last_checkpoint.load(Ordering::SeqCst);
        if state.epoch.saturating_sub(last) < self.options.checkpoint_every {
            return;
        }
        if self.core.inflight.swap(true, Ordering::SeqCst) {
            return; // one at a time
        }
        let sent = self
            .tx
            .as_ref()
            .map(|tx| tx.send(Arc::clone(state)).is_ok())
            .unwrap_or(false);
        if !sent {
            self.core.inflight.store(false, Ordering::SeqCst);
        }
    }

    /// Writes a checkpoint of `state` synchronously (blocking the
    /// caller, not concurrent writers) and returns its epoch.
    pub(crate) fn checkpoint_now(&self, state: &EngineState) -> Result<u64, EngineError> {
        self.core.checkpoint_state(state)
    }

    /// Epoch of the newest durable checkpoint.
    pub(crate) fn last_checkpoint_epoch(&self) -> u64 {
        self.core.last_checkpoint.load(Ordering::SeqCst)
    }

    /// Forces every appended record to stable storage — the shutdown
    /// flush (makes `SyncPolicy::Os` logs durable up to the last commit).
    pub(crate) fn flush(&self) -> Result<(), EngineError> {
        let mut wal = self.core.wal.lock().expect("wal lock");
        let epoch = wal.last_epoch();
        wal.sync().map_err(|e| self.core.storage_error(epoch, e))
    }

    /// The backend this engine persists to.
    pub(crate) fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.core.backend
    }
}

impl Drop for Durability {
    fn drop(&mut self) {
        // Closing the channel ends the worker loop; join so an in-flight
        // checkpoint finishes (or fails into the poison latch, where it
        // is now moot) before the backend handle drops.
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Loads the newest valid checkpoint from `backend`, failing with
/// [`EngineError::Recovery`] when none exists or none validates.
pub(crate) fn load_checkpoint(
    backend: &Arc<dyn StorageBackend>,
) -> Result<idq_storage::Checkpoint, EngineError> {
    match latest_checkpoint(backend) {
        Ok(Some(ckpt)) => Ok(ckpt),
        Ok(None) => Err(EngineError::Recovery {
            path: backend.label(),
            epoch: 0,
            cause: idq_storage::StorageError::NoCheckpoint {
                path: backend.label(),
            },
        }),
        Err(cause) => Err(EngineError::Recovery {
            path: backend.label(),
            epoch: 0,
            cause,
        }),
    }
}

/// Whether `backend` holds any durable engine state (checkpoint files) —
/// the create-vs-recover dispatch of [`crate::IndoorEngine::open`].
pub(crate) fn has_durable_state(backend: &Arc<dyn StorageBackend>) -> bool {
    matches!(latest_checkpoint(backend), Ok(Some(_)))
}
