//! Commit-retention hook: the write path's tap for history recorders.
//!
//! The MVCC engine materializes every epoch-stamped version but, by
//! itself, forgets them as soon as the last snapshot drops — it can only
//! answer "where is everything *now*". A [`RetentionSink`] attached via
//! [`crate::IndoorEngine::attach_retention`] observes every commit group
//! right after it publishes: the sequencer hands it one [`CommitRecord`]
//! per epoch — the group's merged [`UpdateReport`], a [`Snapshot`] pinned
//! to the freshly published version, and a wall-clock stamp.
//!
//! The contract mirrors the dispatch engine's never-block discipline:
//! [`RetentionSink::record`] is called **on the committing leader inside
//! the serial sequencer section**, so an implementation must only enqueue
//! (a mutex push, a condvar notify) and return — any real work (delta
//! compression, trajectory indexing, eviction) belongs on the sink's own
//! thread. Records arrive in strictly increasing epoch order, exactly one
//! per committed epoch from the attach point on.
//!
//! The canonical implementation is `idq-history`'s `HistoryRecorder`: a
//! bounded, delta-compressed history ring plus a 3D (x, y, time)
//! trajectory index and the historical query family served from it.

use crate::snapshot::Snapshot;
use crate::update::UpdateReport;

/// One committed epoch as the retention hook observes it: the merged
/// commit-group report (net delta over the whole group), a snapshot pinned
/// to the published version, and the stamps that order it in time.
#[derive(Clone, Debug)]
pub struct CommitRecord {
    /// The epoch this commit published (strictly increasing, one record
    /// per committed epoch).
    pub epoch: u64,
    /// Wall-clock stamp of the publish, milliseconds since the Unix
    /// epoch (0 if the system clock is unreadable). Epochs, not wall
    /// time, are the engine's logical clock — this is metadata for
    /// presenting trajectories, never for ordering.
    pub wall_ms: u64,
    /// The commit group's merged report: concatenated outcomes, the net
    /// [`crate::UpdateDelta`] and union stats — the same report a
    /// subscription broadcast carries.
    pub report: UpdateReport,
    /// A snapshot pinned to the version this commit published. Holding it
    /// keeps the version alive; sinks that retain only deltas should drop
    /// it once the record is compressed.
    pub snapshot: Snapshot,
}

/// A consumer of committed epochs, attached once per engine (the same
/// set-once discipline as the durability layer).
///
/// Both methods are called from the write path and must never block:
/// [`RetentionSink::record`] from the committing leader after each
/// publish, [`RetentionSink::close`] when the last [`crate::WriteHandle`]
/// releases (no further records will arrive; the sink's worker should
/// drain and park).
pub trait RetentionSink: Send + Sync + std::fmt::Debug {
    /// Observe one committed epoch. Enqueue-only — the sequencer is
    /// waiting.
    fn record(&self, record: CommitRecord);

    /// The write side is done: no further [`RetentionSink::record`] calls
    /// will ever arrive. Enqueue-only.
    fn close(&self);
}
