//! Object-layer errors.

use crate::object::ObjectId;

/// Errors raised by object construction and the object store.
#[derive(Clone, Debug, PartialEq)]
pub enum ObjectError {
    /// An object must have at least one instance.
    EmptyInstances,
    /// Instance weights must be positive and sum to 1 (within tolerance).
    BadWeights {
        /// The offending sum.
        sum: f64,
    },
    /// Instance coordinates must be finite.
    NonFiniteInstance(usize),
    /// Unknown object id.
    UnknownObject(ObjectId),
    /// The object id already exists in the store.
    DuplicateObject(ObjectId),
    /// No partition could host an instance (point is outside the building).
    NoHostPartition,
}

impl std::fmt::Display for ObjectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObjectError::EmptyInstances => write!(f, "object has no instances"),
            ObjectError::BadWeights { sum } => {
                write!(f, "instance weights sum to {sum}, expected 1")
            }
            ObjectError::NonFiniteInstance(i) => write!(f, "instance {i} is non-finite"),
            ObjectError::UnknownObject(id) => write!(f, "unknown object {id}"),
            ObjectError::DuplicateObject(id) => write!(f, "object {id} already exists"),
            ObjectError::NoHostPartition => {
                write!(f, "no partition can host the object's instances")
            }
        }
    }
}

impl std::error::Error for ObjectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        assert!(ObjectError::BadWeights { sum: 0.5 }
            .to_string()
            .contains("0.5"));
        assert!(ObjectError::UnknownObject(ObjectId(7))
            .to_string()
            .contains("O7"));
    }
}
