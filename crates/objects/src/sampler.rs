//! Gaussian instance sampling (§V-A).
//!
//! The paper generates each object's PDF as 100 sampling points following a
//! Gaussian distribution whose mean is the uncertainty-region centre and
//! whose standard deviation is one sixth of the region's diameter (= radius
//! / 3), truncated to the circular region. We add one practical constraint
//! the paper leaves implicit: every instance must lie inside *some*
//! partition (instances inside walls are meaningless for indoor distance),
//! so out-of-partition draws are rejected and, past a retry budget, clamped
//! to the region centre.

use crate::error::ObjectError;
use crate::object::{ObjectId, UncertainObject};
use idq_geom::{Circle, Point2};
use idq_model::{Floor, IndoorPoint, IndoorSpace};
use rand::RngExt;

/// Gaussian sampler for uncertain-object instances.
#[derive(Clone, Copy, Debug)]
pub struct GaussianSampler {
    /// Number of instances per object (paper: 100).
    pub instances: usize,
    /// σ as a fraction of the region *radius* (paper: diameter/6 = radius/3,
    /// i.e. 1/3).
    pub sigma_fraction: f64,
    /// Rejection-sampling retries per instance before clamping to centre.
    pub max_retries: usize,
}

impl Default for GaussianSampler {
    fn default() -> Self {
        GaussianSampler {
            instances: 100,
            sigma_fraction: 1.0 / 3.0,
            max_retries: 64,
        }
    }
}

impl GaussianSampler {
    /// A sampler with `n` instances and the paper's σ.
    pub fn with_instances(n: usize) -> Self {
        GaussianSampler {
            instances: n.max(1),
            ..Self::default()
        }
    }

    /// Samples an uncertain object centred at `center` on `floor` with the
    /// given region radius. The centre itself must lie in a partition.
    pub fn sample<R: RngExt + ?Sized>(
        &self,
        id: ObjectId,
        center: Point2,
        floor: Floor,
        radius: f64,
        space: &IndoorSpace,
        rng: &mut R,
    ) -> Result<UncertainObject, ObjectError> {
        self.sample_impl(id, center, floor, radius, rng, |p| {
            space.partition_at(IndoorPoint::new(p, floor)).is_some()
        })
    }

    /// Like [`GaussianSampler::sample`], but point-locates every draw
    /// against a caller-supplied candidate-partition list instead of
    /// scanning the whole floor. Exact — identical draws, acceptances and
    /// errors — whenever `hint` contains every active partition overlapping
    /// the region's bounding box (all draws are truncated to the region, so
    /// no acceptable draw can fall outside the hint); batch appliers derive
    /// such a hint from the index units the region footprint touches.
    // One parameter past clippy's limit, deliberately: this is `sample`'s
    // exact signature plus the hint, and splitting them apart would hide
    // the correspondence.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_with_hint<R: RngExt + ?Sized>(
        &self,
        id: ObjectId,
        center: Point2,
        floor: Floor,
        radius: f64,
        space: &IndoorSpace,
        hint: &[idq_model::PartitionId],
        rng: &mut R,
    ) -> Result<UncertainObject, ObjectError> {
        self.sample_impl(id, center, floor, radius, rng, |p| {
            hint.iter().any(|&pid| {
                space
                    .partition(pid)
                    .map(|part| part.contains(p, floor))
                    .unwrap_or(false)
            })
        })
    }

    fn sample_impl<R: RngExt + ?Sized>(
        &self,
        id: ObjectId,
        center: Point2,
        floor: Floor,
        radius: f64,
        rng: &mut R,
        in_partition: impl Fn(Point2) -> bool,
    ) -> Result<UncertainObject, ObjectError> {
        if !in_partition(center) {
            return Err(ObjectError::NoHostPartition);
        }
        let region = Circle::new(center, radius);
        let sigma = radius * self.sigma_fraction;
        let mut positions = Vec::with_capacity(self.instances);
        for _ in 0..self.instances {
            let mut accepted = center;
            for _ in 0..self.max_retries {
                let candidate = Point2::new(
                    center.x + sigma * standard_normal(rng),
                    center.y + sigma * standard_normal(rng),
                );
                let in_region = radius <= 0.0 || region.contains(candidate);
                if in_region && in_partition(candidate) {
                    accepted = candidate;
                    break;
                }
            }
            positions.push(accepted);
        }
        UncertainObject::with_uniform_weights(id, region, floor, positions)
    }
}

/// One standard-normal draw via Box–Muller (we deliberately avoid an extra
/// `rand_distr` dependency; see DESIGN.md §5).
pub fn standard_normal<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_model::FloorPlanBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn one_room() -> IndoorSpace {
        let mut b = FloorPlanBuilder::new(4.0);
        b.add_room(0, idq_geom::Rect2::from_bounds(0.0, 0.0, 100.0, 100.0))
            .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn samples_inside_region_and_partition() {
        let space = one_room();
        let mut rng = StdRng::seed_from_u64(42);
        let s = GaussianSampler::default();
        let o = s
            .sample(
                ObjectId(1),
                Point2::new(50.0, 50.0),
                0,
                10.0,
                &space,
                &mut rng,
            )
            .unwrap();
        assert_eq!(o.len(), 100);
        for inst in o.instances() {
            assert!(o.region.contains(inst.position), "inside the circle");
            assert!(
                space
                    .partition_at(IndoorPoint::new(inst.position, 0))
                    .is_some(),
                "inside a partition"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let space = one_room();
        let s = GaussianSampler::with_instances(25);
        let a = s
            .sample(
                ObjectId(1),
                Point2::new(50.0, 50.0),
                0,
                5.0,
                &space,
                &mut StdRng::seed_from_u64(7),
            )
            .unwrap();
        let b = s
            .sample(
                ObjectId(1),
                Point2::new(50.0, 50.0),
                0,
                5.0,
                &space,
                &mut StdRng::seed_from_u64(7),
            )
            .unwrap();
        for (x, y) in a.instances().iter().zip(b.instances()) {
            assert_eq!(x.position, y.position);
        }
    }

    #[test]
    fn center_outside_building_is_rejected() {
        let space = one_room();
        let mut rng = StdRng::seed_from_u64(1);
        let s = GaussianSampler::default();
        assert!(matches!(
            s.sample(
                ObjectId(1),
                Point2::new(500.0, 500.0),
                0,
                5.0,
                &space,
                &mut rng
            ),
            Err(ObjectError::NoHostPartition)
        ));
    }

    #[test]
    fn near_wall_center_clamps_rather_than_escapes() {
        let space = one_room();
        let mut rng = StdRng::seed_from_u64(3);
        // Centre 1 m from the wall with radius 10: many draws fall outside;
        // all surviving instances must still be valid.
        let o = GaussianSampler::default()
            .sample(
                ObjectId(1),
                Point2::new(1.0, 50.0),
                0,
                10.0,
                &space,
                &mut rng,
            )
            .unwrap();
        for inst in o.instances() {
            assert!(space
                .partition_at(IndoorPoint::new(inst.position, 0))
                .is_some());
        }
    }

    #[test]
    fn zero_radius_collapses_to_center() {
        let space = one_room();
        let mut rng = StdRng::seed_from_u64(5);
        let o = GaussianSampler::with_instances(10)
            .sample(
                ObjectId(1),
                Point2::new(50.0, 50.0),
                0,
                0.0,
                &space,
                &mut rng,
            )
            .unwrap();
        for inst in o.instances() {
            assert_eq!(inst.position, Point2::new(50.0, 50.0));
        }
    }

    #[test]
    fn hint_sampling_is_bit_identical_to_full_point_location() {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, idq_geom::Rect2::from_bounds(0.0, 0.0, 20.0, 20.0))
            .unwrap();
        let r1 = b
            .add_room(0, idq_geom::Rect2::from_bounds(20.0, 0.0, 40.0, 20.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(20.0, 10.0)).unwrap();
        let space = b.finish().unwrap();
        let s = GaussianSampler::with_instances(40);
        // A region straddling the shared wall: draws near the wall are in
        // either room, draws beyond the outer walls are rejected.
        let center = Point2::new(19.0, 10.0);
        let full = s
            .sample(
                ObjectId(1),
                center,
                0,
                8.0,
                &space,
                &mut StdRng::seed_from_u64(5),
            )
            .unwrap();
        let hinted = s
            .sample_with_hint(
                ObjectId(1),
                center,
                0,
                8.0,
                &space,
                &[r0, r1],
                &mut StdRng::seed_from_u64(5),
            )
            .unwrap();
        for (a, b) in full.instances().iter().zip(hinted.instances()) {
            assert_eq!(a.position, b.position);
        }
        // A hint missing the centre's partition errors like an
        // out-of-building centre.
        assert!(matches!(
            s.sample_with_hint(
                ObjectId(2),
                Point2::new(5.0, 5.0),
                0,
                1.0,
                &space,
                &[r1],
                &mut StdRng::seed_from_u64(5),
            ),
            Err(ObjectError::NoHostPartition)
        ));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f64 = draws.iter().sum::<f64>() / n as f64;
        let var: f64 = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean ≈ 0, got {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance ≈ 1, got {var}");
    }
}
