//! Partition-aligned decomposition of an uncertain object: `O = ∪ S[j]`
//! (§II-B).
//!
//! An object's uncertainty region may overlap several partitions; its
//! instances are grouped by the partition containing them. Each group is an
//! *uncertainty subregion* `S[j]` carrying its probability mass and a tight
//! bounding box — the unit the distance cases (§II-C) and the probabilistic
//! bounds (§II-D.3) operate on.

use crate::error::ObjectError;
use crate::object::UncertainObject;
use idq_geom::{Point2, Rect2};
use idq_model::{IndoorSpace, PartitionId};

/// One uncertainty subregion `S[j]`: the instances of an object falling
/// into a single partition.
#[derive(Clone, Debug)]
pub struct Subregion {
    /// The partition hosting these instances — `P(S[j])`.
    pub partition: PartitionId,
    /// Indices into the object's instance slice.
    pub instance_indices: Vec<u32>,
    /// Probability mass `Σ_{s_i ∈ S[j]} p_i`.
    pub prob: f64,
    /// Tight bounding box of the member instance positions.
    pub bbox: Rect2,
}

impl Subregion {
    /// Minimum planar distance from `q` to the subregion's bounding box —
    /// a valid lower bound on `|d, S[j]|_minE`.
    #[inline]
    pub fn min_dist_bbox(&self, q: Point2) -> f64 {
        self.bbox.min_dist(q)
    }

    /// Maximum planar distance from `q` to the subregion's bounding box —
    /// a valid upper bound on `|d, S[j]|_maxE`.
    #[inline]
    pub fn max_dist_bbox(&self, q: Point2) -> f64 {
        self.bbox.max_dist(q)
    }
}

/// The full decomposition of one object, sorted by descending probability
/// mass (deterministic; ties broken by partition id).
#[derive(Clone, Debug)]
pub struct Subregions {
    subs: Vec<Subregion>,
}

impl Subregions {
    /// Computes the subregions of `object` against the current topology.
    ///
    /// Instance-to-partition assignment:
    /// 1. the partition containing the instance point (normal case);
    /// 2. otherwise — an instance numerically outside every footprint
    ///    (sampler clamping, wall sliver after a topology change) — the
    ///    nearest active partition on the instance's floor by bounding-box
    ///    distance.
    ///
    /// Errors with [`ObjectError::NoHostPartition`] only if a floor has no
    /// partitions at all.
    pub fn compute(object: &UncertainObject, space: &IndoorSpace) -> Result<Self, ObjectError> {
        Self::compute_with_hint(object, space, &[])
    }

    /// Like [`Subregions::compute`], but tries `hint` partitions first.
    ///
    /// Callers that already know which partitions the object overlaps (the
    /// composite index's o-table) pass them here, turning per-instance
    /// point location from a floor-wide scan into a handful of containment
    /// checks — the assignment result is identical because partitions do
    /// not overlap (up to shared boundaries, where the hint may pick the
    /// other co-boundary partition; distances are unaffected as boundary
    /// points belong to both).
    pub fn compute_with_hint(
        object: &UncertainObject,
        space: &IndoorSpace,
        hint: &[PartitionId],
    ) -> Result<Self, ObjectError> {
        let mut by_partition: std::collections::HashMap<PartitionId, Vec<u32>> =
            std::collections::HashMap::new();
        for (idx, inst) in object.instances().iter().enumerate() {
            let hinted = hint.iter().copied().find(|&pid| {
                space
                    .partition(pid)
                    .map(|p| p.contains(inst.position, inst.floor))
                    .unwrap_or(false)
            });
            let pid = match hinted {
                Some(p) => p,
                None => match space.partition_at(inst.indoor_point()) {
                    Some(p) => p,
                    None => nearest_partition(space, inst.position, inst.floor)
                        .ok_or(ObjectError::NoHostPartition)?,
                },
            };
            by_partition.entry(pid).or_default().push(idx as u32);
        }
        let mut subs: Vec<Subregion> = by_partition
            .into_iter()
            .map(|(partition, instance_indices)| {
                let mut prob = 0.0;
                let mut bbox = Rect2::empty_sentinel();
                for &i in &instance_indices {
                    let inst = &object.instances()[i as usize];
                    prob += inst.weight;
                    bbox = bbox.union(&Rect2::new(inst.position, inst.position));
                }
                Subregion {
                    partition,
                    instance_indices,
                    prob,
                    bbox,
                }
            })
            .collect();
        subs.sort_by(|a, b| {
            b.prob
                .total_cmp(&a.prob)
                .then_with(|| a.partition.cmp(&b.partition))
        });
        Ok(Subregions { subs })
    }

    /// The subregions, descending by probability mass.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &Subregion> {
        self.subs.iter()
    }

    /// As a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Subregion] {
        &self.subs
    }

    /// Number of subregions — the paper's `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// `true` iff there are no subregions (cannot happen for valid objects).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Returns `true` when the whole object lies in one partition — the
    /// boundary between the single-partition (§II-C.1/2) and
    /// multi-partition (§II-C.3) distance cases.
    #[inline]
    pub fn single_partition(&self) -> bool {
        self.subs.len() == 1
    }

    /// The partitions overlapped by the object — the paper's `P(O)`.
    pub fn partitions(&self) -> Vec<PartitionId> {
        self.subs.iter().map(|s| s.partition).collect()
    }
}

/// Nearest active partition on `floor` to `p` by bounding-box distance.
fn nearest_partition(space: &IndoorSpace, p: Point2, floor: u16) -> Option<PartitionId> {
    space
        .partitions_on_floor(floor)
        .iter()
        .copied()
        .filter(|&pid| space.partition(pid).is_ok())
        .min_by(|&a, &b| {
            let da = space
                .partition(a)
                .map(|x| x.bbox.min_dist(p))
                .unwrap_or(f64::INFINITY);
            let db = space
                .partition(b)
                .map(|x| x.bbox.min_dist(p))
                .unwrap_or(f64::INFINITY);
            da.total_cmp(&db).then(a.cmp(&b))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{ObjectId, UncertainObject};
    use idq_geom::{Circle, Rect2 as R};
    use idq_model::FloorPlanBuilder;

    /// Two rooms with a door; object instances straddle the wall.
    fn setup() -> (IndoorSpace, UncertainObject) {
        let mut b = FloorPlanBuilder::new(4.0);
        let a = b.add_room(0, R::from_bounds(0.0, 0.0, 10.0, 10.0)).unwrap();
        let c = b
            .add_room(0, R::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        b.add_door_between(a, c, Point2::new(10.0, 5.0)).unwrap();
        let s = b.finish().unwrap();
        let o = UncertainObject::with_uniform_weights(
            ObjectId(1),
            Circle::new(Point2::new(10.0, 5.0), 3.0),
            0,
            vec![
                Point2::new(8.0, 5.0),  // room a
                Point2::new(9.0, 4.0),  // room a
                Point2::new(12.0, 5.0), // room c
                Point2::new(11.5, 6.0), // room c
            ],
        )
        .unwrap();
        (s, o)
    }

    #[test]
    fn instances_group_by_partition() {
        let (s, o) = setup();
        let subs = Subregions::compute(&o, &s).unwrap();
        assert_eq!(subs.len(), 2);
        assert!(!subs.single_partition());
        let total: f64 = subs.iter().map(|x| x.prob).sum();
        assert!((total - 1.0).abs() < 1e-9, "probability mass preserved");
        // Every instance appears exactly once.
        let mut seen: Vec<u32> = subs
            .iter()
            .flat_map(|x| x.instance_indices.clone())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        // Sorted by descending mass (tie → partition id asc), both 0.5 here.
        assert!(subs.as_slice()[0].prob >= subs.as_slice()[1].prob);
    }

    #[test]
    fn bbox_distances_bound_instance_distances() {
        let (s, o) = setup();
        let subs = Subregions::compute(&o, &s).unwrap();
        let q = Point2::new(0.0, 0.0);
        for sub in subs.iter() {
            let exact_min = sub
                .instance_indices
                .iter()
                .map(|&i| o.instances()[i as usize].position.dist(q))
                .fold(f64::INFINITY, f64::min);
            let exact_max = sub
                .instance_indices
                .iter()
                .map(|&i| o.instances()[i as usize].position.dist(q))
                .fold(0.0, f64::max);
            assert!(sub.min_dist_bbox(q) <= exact_min + 1e-9);
            assert!(sub.max_dist_bbox(q) >= exact_max - 1e-9);
        }
    }

    #[test]
    fn single_partition_object() {
        let (s, _) = setup();
        let o = UncertainObject::with_uniform_weights(
            ObjectId(2),
            Circle::new(Point2::new(5.0, 5.0), 1.0),
            0,
            vec![Point2::new(4.5, 5.0), Point2::new(5.5, 5.2)],
        )
        .unwrap();
        let subs = Subregions::compute(&o, &s).unwrap();
        assert!(subs.single_partition());
        assert_eq!(subs.partitions().len(), 1);
    }

    #[test]
    fn stray_instance_snaps_to_nearest_partition() {
        let (s, _) = setup();
        // Instance slightly outside the building (x = -0.5).
        let o = UncertainObject::with_uniform_weights(
            ObjectId(3),
            Circle::new(Point2::new(0.0, 5.0), 1.0),
            0,
            vec![Point2::new(-0.5, 5.0), Point2::new(0.5, 5.0)],
        )
        .unwrap();
        let subs = Subregions::compute(&o, &s).unwrap();
        assert_eq!(subs.len(), 1, "stray instance joins room a");
    }

    #[test]
    fn no_partitions_on_floor_errors() {
        let (s, _) = setup();
        let o = UncertainObject::with_uniform_weights(
            ObjectId(4),
            Circle::new(Point2::new(5.0, 5.0), 1.0),
            7, // no such floor
            vec![Point2::new(5.0, 5.0)],
        )
        .unwrap();
        assert!(matches!(
            Subregions::compute(&o, &s),
            Err(ObjectError::NoHostPartition)
        ));
    }
}
