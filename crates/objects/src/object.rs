//! Uncertain objects and their discrete instances.

use crate::error::ObjectError;
use idq_geom::{Circle, Point2, Rect2};
use idq_model::{Floor, IndoorPoint};

/// Identifier of an uncertain moving object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "O{}", self.0)
    }
}

/// One existential instance `(s_i, p_i)` of an uncertain object.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Instance {
    /// Planar position of the instance.
    pub position: Point2,
    /// Floor the instance is on.
    pub floor: Floor,
    /// Existential probability `p_i`.
    pub weight: f64,
}

impl Instance {
    /// The instance position as an indoor point.
    #[inline]
    pub fn indoor_point(&self) -> IndoorPoint {
        IndoorPoint::new(self.position, self.floor)
    }
}

/// An uncertain indoor moving object: `O = {(s_i, p_i)}` with `Σ p_i = 1`
/// (Def. in §II-B), plus the circular uncertainty region the instances were
/// drawn from (used for geometric filtering).
#[derive(Clone, Debug)]
pub struct UncertainObject {
    /// Identifier.
    pub id: ObjectId,
    /// The reported uncertainty region (circle on one floor, §V-A).
    pub region: Circle,
    /// Floor of the region centre.
    pub floor: Floor,
    /// The discrete instances. Non-empty; weights sum to 1.
    instances: Box<[Instance]>,
    /// Cached tight bounding box of the instance positions.
    instance_bbox: Rect2,
}

/// Tolerance for the weight-sum invariant.
const WEIGHT_TOL: f64 = 1e-6;

impl UncertainObject {
    /// Creates an object, validating the probability invariant.
    pub fn new(
        id: ObjectId,
        region: Circle,
        floor: Floor,
        instances: Vec<Instance>,
    ) -> Result<Self, ObjectError> {
        if instances.is_empty() {
            return Err(ObjectError::EmptyInstances);
        }
        let mut sum = 0.0;
        let mut bbox = Rect2::empty_sentinel();
        for (i, inst) in instances.iter().enumerate() {
            if !inst.position.is_finite() || !inst.weight.is_finite() || inst.weight <= 0.0 {
                return Err(ObjectError::NonFiniteInstance(i));
            }
            sum += inst.weight;
            bbox = bbox.union(&Rect2::new(inst.position, inst.position));
        }
        if (sum - 1.0).abs() > WEIGHT_TOL {
            return Err(ObjectError::BadWeights { sum });
        }
        Ok(UncertainObject {
            id,
            region,
            floor,
            instances: instances.into_boxed_slice(),
            instance_bbox: bbox,
        })
    }

    /// Creates an object with uniform weights over the given positions.
    pub fn with_uniform_weights(
        id: ObjectId,
        region: Circle,
        floor: Floor,
        positions: Vec<Point2>,
    ) -> Result<Self, ObjectError> {
        let n = positions.len();
        if n == 0 {
            return Err(ObjectError::EmptyInstances);
        }
        let w = 1.0 / n as f64;
        let instances = positions
            .into_iter()
            .map(|p| Instance {
                position: p,
                floor,
                weight: w,
            })
            .collect();
        Self::new(id, region, floor, instances)
    }

    /// A certain (point) object: one instance with probability 1. Useful
    /// for tests and for positioning systems with exact reads.
    pub fn point_object(id: ObjectId, at: IndoorPoint) -> Self {
        UncertainObject {
            id,
            region: Circle::new(at.point, 0.0),
            floor: at.floor,
            instances: vec![Instance {
                position: at.point,
                floor: at.floor,
                weight: 1.0,
            }]
            .into_boxed_slice(),
            instance_bbox: Rect2::new(at.point, at.point),
        }
    }

    /// The instances `{(s_i, p_i)}`.
    #[inline]
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Number of instances — the paper's `|O|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Always `false` (construction rejects empty instance sets); present
    /// for idiomatic pairing with [`UncertainObject::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Tight bounding box of the instance positions.
    #[inline]
    pub fn instance_bbox(&self) -> Rect2 {
        self.instance_bbox
    }

    /// The planar rectangle this object occupies for index maintenance:
    /// uncertainty region ∪ instances. The single source of the footprint
    /// formula — the composite index's object layer and the engine's batch
    /// stager must agree on it.
    #[inline]
    pub fn footprint_rect(&self) -> Rect2 {
        self.region.bbox().union(&self.instance_bbox)
    }

    /// Minimum planar Euclidean distance from `q` to any instance —
    /// `|q, O|_minE` (same-floor geometric lower bound ingredient).
    pub fn min_euclidean(&self, q: Point2) -> f64 {
        self.instances
            .iter()
            .map(|i| i.position.dist(q))
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum planar Euclidean distance from `q` to any instance.
    pub fn max_euclidean(&self, q: Point2) -> f64 {
        self.instances
            .iter()
            .map(|i| i.position.dist(q))
            .fold(0.0, f64::max)
    }

    /// Expected planar Euclidean distance from `q` (used by tests as a
    /// sanity baseline — indoor distance never undercuts it on one floor).
    pub fn expected_euclidean(&self, q: Point2) -> f64 {
        self.instances
            .iter()
            .map(|i| i.position.dist(q) * i.weight)
            .sum()
    }
}

impl std::fmt::Display for UncertainObject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{} instances, r={:.1}m, floor {}]",
            self.id,
            self.len(),
            self.region.radius,
            self.floor
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(positions: Vec<Point2>) -> UncertainObject {
        UncertainObject::with_uniform_weights(
            ObjectId(1),
            Circle::new(Point2::new(0.0, 0.0), 5.0),
            0,
            positions,
        )
        .unwrap()
    }

    #[test]
    fn weights_must_sum_to_one() {
        let bad = vec![
            Instance {
                position: Point2::new(0.0, 0.0),
                floor: 0,
                weight: 0.4,
            },
            Instance {
                position: Point2::new(1.0, 0.0),
                floor: 0,
                weight: 0.4,
            },
        ];
        assert!(matches!(
            UncertainObject::new(ObjectId(1), Circle::new(Point2::new(0.0, 0.0), 1.0), 0, bad),
            Err(ObjectError::BadWeights { .. })
        ));
    }

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(matches!(
            UncertainObject::with_uniform_weights(
                ObjectId(1),
                Circle::new(Point2::new(0.0, 0.0), 1.0),
                0,
                vec![]
            ),
            Err(ObjectError::EmptyInstances)
        ));
        let nan = vec![Instance {
            position: Point2::new(f64::NAN, 0.0),
            floor: 0,
            weight: 1.0,
        }];
        assert!(matches!(
            UncertainObject::new(ObjectId(1), Circle::new(Point2::new(0.0, 0.0), 1.0), 0, nan),
            Err(ObjectError::NonFiniteInstance(0))
        ));
    }

    #[test]
    fn distance_summaries() {
        let o = obj(vec![
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(0.0, 3.0),
        ]);
        let q = Point2::new(8.0, 0.0);
        assert!((o.min_euclidean(q) - 4.0).abs() < 1e-9);
        assert!((o.max_euclidean(q) - (64.0f64 + 9.0).sqrt()).abs() < 1e-9);
        let e = o.expected_euclidean(q);
        assert!(o.min_euclidean(q) <= e && e <= o.max_euclidean(q));
    }

    #[test]
    fn bbox_covers_all_instances() {
        let o = obj(vec![
            Point2::new(-1.0, 2.0),
            Point2::new(4.0, 0.0),
            Point2::new(0.0, 3.0),
        ]);
        let bb = o.instance_bbox();
        for i in o.instances() {
            assert!(bb.contains(i.position));
        }
        assert_eq!(bb, Rect2::from_bounds(-1.0, 0.0, 4.0, 3.0));
    }

    #[test]
    fn point_object_is_certain() {
        let o =
            UncertainObject::point_object(ObjectId(9), IndoorPoint::new(Point2::new(1.0, 2.0), 3));
        assert_eq!(o.len(), 1);
        assert_eq!(o.instances()[0].weight, 1.0);
        assert_eq!(o.floor, 3);
    }
}
