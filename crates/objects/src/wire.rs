//! Durable wire codec for uncertain objects and the object store.
//!
//! Instances travel as raw IEEE-754 bits, so a decoded object re-validates
//! through [`UncertainObject::new`] with *exactly* the weight sum the
//! original passed with, and every cached quantity (instance bounding box)
//! is recomputed from identical inputs — the decoded object is
//! indistinguishable from the original.
//!
//! The store codec persists the population in ascending-id order plus the
//! id-allocation watermark: the allocator is observable state (the engine's
//! deterministic id allocation for sampled inserts depends on it), so a
//! recovered store must resume allocation where the original would have.

use crate::object::{Instance, ObjectId, UncertainObject};
use crate::store::ObjectStore;
use idq_geom::Circle;
use idq_model::wire::{put_floor, put_point, take_floor, take_point};
use idq_storage::codec::{put_f64, put_u64, put_usize, Cursor};
use idq_storage::StorageError;

pub fn put_object(buf: &mut Vec<u8>, o: &UncertainObject) {
    put_u64(buf, o.id.0);
    put_point(buf, o.region.center);
    put_f64(buf, o.region.radius);
    put_floor(buf, o.floor);
    put_usize(buf, o.instances().len());
    for inst in o.instances() {
        put_point(buf, inst.position);
        put_floor(buf, inst.floor);
        put_f64(buf, inst.weight);
    }
}

pub fn take_object(c: &mut Cursor<'_>) -> Result<UncertainObject, StorageError> {
    let id = ObjectId(c.take_u64("object id")?);
    let center = take_point(c)?;
    let radius = c.take_f64("object region radius")?;
    let floor = take_floor(c)?;
    let n = c.take_len("object instance count")?;
    let mut instances = Vec::with_capacity(n);
    for _ in 0..n {
        let position = take_point(c)?;
        let floor = take_floor(c)?;
        let weight = c.take_f64("instance weight")?;
        instances.push(Instance {
            position,
            floor,
            weight,
        });
    }
    let at = c.pos();
    // Re-validation sees the exact bits the original construction saw, so
    // a faithfully stored object always passes; failure means corruption.
    UncertainObject::new(id, Circle::new(center, radius), floor, instances).map_err(|_| {
        StorageError::Decode {
            what: "uncertain object",
            offset: at,
        }
    })
}

/// Serialize the whole store: watermark, then objects in ascending-id
/// order (deterministic bytes for identical stores).
pub fn put_store(buf: &mut Vec<u8>, store: &ObjectStore) {
    put_u64(buf, store.id_watermark());
    put_usize(buf, store.len());
    for id in store.ids_sorted() {
        put_object(buf, store.get(id).expect("listed id is present"));
    }
}

pub fn take_store(c: &mut Cursor<'_>) -> Result<ObjectStore, StorageError> {
    let watermark = c.take_u64("store watermark")?;
    let n = c.take_len("store object count")?;
    let mut store = ObjectStore::new();
    for _ in 0..n {
        let at = c.pos();
        let object = take_object(c)?;
        store.insert(object).map_err(|_| StorageError::Decode {
            what: "store object (duplicate id)",
            offset: at,
        })?;
    }
    store.restore_id_watermark(watermark);
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::Point2;
    use idq_model::IndoorPoint;

    fn sample_object(id: u64) -> UncertainObject {
        UncertainObject::with_uniform_weights(
            ObjectId(id),
            Circle::new(Point2::new(1.5, -2.25), 6.0),
            2,
            vec![
                Point2::new(1.0, 2.0),
                Point2::new(0.1 + 0.2, 3.0), // a value with no short decimal form
                Point2::new(-4.0, 5.5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn object_round_trips_bit_identically() {
        let o = sample_object(42);
        let mut buf = Vec::new();
        put_object(&mut buf, &o);
        let mut c = Cursor::new(&buf);
        let back = take_object(&mut c).unwrap();
        c.finish("object").unwrap();
        assert_eq!(back.id, o.id);
        assert_eq!(back.region.center, o.region.center);
        assert_eq!(back.region.radius.to_bits(), o.region.radius.to_bits());
        assert_eq!(back.floor, o.floor);
        assert_eq!(back.instances().len(), o.instances().len());
        for (a, b) in back.instances().iter().zip(o.instances()) {
            assert_eq!(a.position.x.to_bits(), b.position.x.to_bits());
            assert_eq!(a.position.y.to_bits(), b.position.y.to_bits());
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
            assert_eq!(a.floor, b.floor);
        }
        assert_eq!(back.instance_bbox(), o.instance_bbox());
    }

    #[test]
    fn store_round_trips_population_and_watermark() {
        let mut store = ObjectStore::new();
        for id in [9u64, 3, 7] {
            store.insert(sample_object(id)).unwrap();
        }
        let minted = store.allocate_id(); // bump the watermark past the ids
        assert_eq!(minted, ObjectId(10));
        let mut buf = Vec::new();
        put_store(&mut buf, &store);
        let mut c = Cursor::new(&buf);
        let back = take_store(&mut c).unwrap();
        c.finish("store").unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.ids_sorted(), store.ids_sorted());
        assert_eq!(back.id_watermark(), store.id_watermark());
        for id in back.ids_sorted() {
            assert_eq!(back.get(id).unwrap().floor, store.get(id).unwrap().floor);
        }
    }

    #[test]
    fn point_objects_and_empty_store_round_trip() {
        let mut store = ObjectStore::new();
        store
            .insert(UncertainObject::point_object(
                ObjectId(0),
                IndoorPoint::new(Point2::new(0.0, 0.0), 0),
            ))
            .unwrap();
        let mut buf = Vec::new();
        put_store(&mut buf, &store);
        let back = take_store(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back.len(), 1);

        let empty = ObjectStore::new();
        let mut buf = Vec::new();
        put_store(&mut buf, &empty);
        let back = take_store(&mut Cursor::new(&buf)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.id_watermark(), 0);
    }

    #[test]
    fn truncated_object_is_a_decode_error() {
        let mut buf = Vec::new();
        put_object(&mut buf, &sample_object(1));
        buf.truncate(buf.len() - 4);
        let mut c = Cursor::new(&buf);
        assert!(matches!(
            take_object(&mut c),
            Err(StorageError::Decode { .. })
        ));
    }
}
