//! The object store: the mutable ground-truth population of uncertain
//! objects beneath the index's object layer.

use crate::error::ObjectError;
use crate::object::{ObjectId, UncertainObject};
use std::collections::HashMap;
use std::sync::Arc;

/// Owns all live uncertain objects, addressed by [`ObjectId`].
///
/// The store is deliberately index-agnostic: the composite index's object
/// layer (buckets + o-table) references objects by id and is maintained by
/// the engine on every store mutation (the paper's §III-C.2 update flow:
/// an object update is a deletion followed by an insertion).
///
/// Entries are reference-counted internally, so cloning a store shares
/// every object's instance set with the original instead of deep-copying
/// it. This is what makes the engine's copy-on-write commit cheap: each
/// committed version of the world holds its own `ObjectStore` value, but
/// the (potentially hundreds-of-instances) objects untouched by a batch
/// are shared across all versions that contain them.
#[derive(Clone, Debug, Default)]
pub struct ObjectStore {
    objects: HashMap<ObjectId, Arc<UncertainObject>>,
    next_id: u64,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh object id (never reused).
    pub fn allocate_id(&mut self) -> ObjectId {
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Inserts an object; the id must be unused.
    pub fn insert(&mut self, object: UncertainObject) -> Result<(), ObjectError> {
        let id = object.id;
        if self.objects.contains_key(&id) {
            return Err(ObjectError::DuplicateObject(id));
        }
        self.reserve_id(id);
        self.objects.insert(id, Arc::new(object));
        Ok(())
    }

    /// Keeps the id allocator ahead of an externally minted id *before* its
    /// insert lands ([`ObjectStore::insert`] reserves implicitly). Batch
    /// staging reserves every external id up front so ids it allocates for
    /// interleaved engine-sampled inserts match what sequential application
    /// would have produced — and never collide.
    pub fn reserve_id(&mut self, id: ObjectId) {
        self.next_id = self.next_id.max(id.0 + 1);
    }

    /// Removes an object, returning it. When the entry is still shared with
    /// another store version (copy-on-write clones), the returned value is
    /// a copy and the shared entry stays intact in the other versions.
    pub fn remove(&mut self, id: ObjectId) -> Result<UncertainObject, ObjectError> {
        self.objects
            .remove(&id)
            .map(|arc| Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone()))
            .ok_or(ObjectError::UnknownObject(id))
    }

    /// Removes an object without materialising the removed value — the
    /// cheap form of [`ObjectStore::remove`] for callers that only need the
    /// entry gone (a shared entry is just un-referenced, never copied).
    pub fn discard(&mut self, id: ObjectId) -> Result<(), ObjectError> {
        self.objects
            .remove(&id)
            .map(|_| ())
            .ok_or(ObjectError::UnknownObject(id))
    }

    /// Replaces an existing object in place, returning the previous value —
    /// the atomic move primitive (a move never leaves the store without the
    /// object, unlike a remove-then-insert pair). The id must be present.
    /// As with [`ObjectStore::remove`], a previous value still shared with
    /// another store version is returned as a copy.
    pub fn replace(&mut self, object: UncertainObject) -> Result<UncertainObject, ObjectError> {
        let id = object.id;
        match self.objects.get_mut(&id) {
            Some(slot) => {
                let old = std::mem::replace(slot, Arc::new(object));
                Ok(Arc::try_unwrap(old).unwrap_or_else(|shared| (*shared).clone()))
            }
            None => Err(ObjectError::UnknownObject(id)),
        }
    }

    /// Replaces an existing object without materialising the previous
    /// value — the cheap form of [`ObjectStore::replace`] for callers that
    /// do not need the old state back (a shared previous entry is just
    /// un-referenced, never copied).
    pub fn replace_discarding(&mut self, object: UncertainObject) -> Result<(), ObjectError> {
        let id = object.id;
        match self.objects.get_mut(&id) {
            Some(slot) => {
                *slot = Arc::new(object);
                Ok(())
            }
            None => Err(ObjectError::UnknownObject(id)),
        }
    }

    /// The id-allocation watermark: the next id [`ObjectStore::allocate_id`]
    /// would hand out. The allocator is part of a store value's observable
    /// state — a copy-on-write transaction that is dropped discards its
    /// allocations with it, which tests assert through this accessor.
    pub fn id_watermark(&self) -> u64 {
        self.next_id
    }

    /// Rewinds the id allocator to a watermark previously read with
    /// [`ObjectStore::id_watermark`] — for callers managing a store value
    /// directly (the engine's transactions instead discard their whole
    /// store copy, allocator included). If a live object holds an id at or
    /// above `watermark`, the rewind stops just past the live population's
    /// ceiling rather than risking a duplicate allocation.
    pub fn restore_id_watermark(&mut self, watermark: u64) {
        let floor = self.objects.keys().map(|id| id.0 + 1).max().unwrap_or(0);
        self.next_id = watermark.max(floor);
    }

    /// Looks up an object.
    pub fn get(&self, id: ObjectId) -> Result<&UncertainObject, ObjectError> {
        self.objects
            .get(&id)
            .map(|arc| arc.as_ref())
            .ok_or(ObjectError::UnknownObject(id))
    }

    /// Returns `true` if `id` is present.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.contains_key(&id)
    }

    /// Iterates over all objects (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &UncertainObject> {
        self.objects.values().map(|arc| arc.as_ref())
    }

    /// Object ids, sorted (deterministic iteration for tests/benches).
    pub fn ids_sorted(&self) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self.objects.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` iff no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::Point2;
    use idq_model::IndoorPoint;

    fn point_obj(id: u64) -> UncertainObject {
        UncertainObject::point_object(ObjectId(id), IndoorPoint::new(Point2::new(0.0, 0.0), 0))
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = ObjectStore::new();
        s.insert(point_obj(1)).unwrap();
        assert!(s.contains(ObjectId(1)));
        assert_eq!(s.get(ObjectId(1)).unwrap().id, ObjectId(1));
        assert_eq!(s.len(), 1);
        let o = s.remove(ObjectId(1)).unwrap();
        assert_eq!(o.id, ObjectId(1));
        assert!(s.is_empty());
        assert!(matches!(
            s.get(ObjectId(1)),
            Err(ObjectError::UnknownObject(_))
        ));
    }

    #[test]
    fn duplicate_rejected() {
        let mut s = ObjectStore::new();
        s.insert(point_obj(1)).unwrap();
        assert!(matches!(
            s.insert(point_obj(1)),
            Err(ObjectError::DuplicateObject(_))
        ));
    }

    #[test]
    fn replace_swaps_in_place() {
        let mut s = ObjectStore::new();
        s.insert(point_obj(1)).unwrap();
        let replacement =
            UncertainObject::point_object(ObjectId(1), IndoorPoint::new(Point2::new(9.0, 9.0), 0));
        let old = s.replace(replacement).unwrap();
        assert_eq!(old.region.center, Point2::new(0.0, 0.0));
        assert_eq!(
            s.get(ObjectId(1)).unwrap().region.center,
            Point2::new(9.0, 9.0)
        );
        assert_eq!(s.len(), 1);
        assert!(matches!(
            s.replace(point_obj(7)),
            Err(ObjectError::UnknownObject(_))
        ));
    }

    #[test]
    fn watermark_round_trip_and_safety_floor() {
        let mut s = ObjectStore::new();
        let w = s.id_watermark();
        let a = s.allocate_id();
        let b = s.allocate_id();
        assert_eq!((a, b), (ObjectId(w), ObjectId(w + 1)));
        // Nothing was inserted: the rewind fully restores the allocator.
        s.restore_id_watermark(w);
        assert_eq!(s.allocate_id(), ObjectId(w));
        // With a live object above the watermark, the rewind stops at the
        // live population's ceiling instead of risking a duplicate id.
        s.insert(point_obj(10)).unwrap();
        s.restore_id_watermark(0);
        assert_eq!(s.allocate_id(), ObjectId(11));
    }

    #[test]
    fn id_allocation_skips_external_ids() {
        let mut s = ObjectStore::new();
        s.insert(point_obj(10)).unwrap();
        let id = s.allocate_id();
        assert!(id.0 > 10);
        assert!(!s.contains(id));
    }

    #[test]
    fn cloned_stores_share_entries_until_mutated() {
        let mut a = ObjectStore::new();
        a.insert(point_obj(1)).unwrap();
        a.insert(point_obj(2)).unwrap();
        let mut b = a.clone();
        // Removing from the clone leaves the original intact, and the
        // removed value is a faithful copy of the shared entry.
        let o = b.remove(ObjectId(1)).unwrap();
        assert_eq!(o.id, ObjectId(1));
        assert!(a.contains(ObjectId(1)));
        assert!(!b.contains(ObjectId(1)));
        // Replacing in the clone does not disturb the original either.
        let replacement =
            UncertainObject::point_object(ObjectId(2), IndoorPoint::new(Point2::new(7.0, 7.0), 0));
        let old = b.replace(replacement).unwrap();
        assert_eq!(old.region.center, Point2::new(0.0, 0.0));
        assert_eq!(
            a.get(ObjectId(2)).unwrap().region.center,
            Point2::new(0.0, 0.0)
        );
        assert_eq!(
            b.get(ObjectId(2)).unwrap().region.center,
            Point2::new(7.0, 7.0)
        );
        // discard drops without materialising.
        b.discard(ObjectId(2)).unwrap();
        assert!(b.is_empty());
        assert!(matches!(
            b.discard(ObjectId(2)),
            Err(ObjectError::UnknownObject(_))
        ));
    }

    #[test]
    fn sorted_ids_deterministic() {
        let mut s = ObjectStore::new();
        for i in [5, 1, 9, 3] {
            s.insert(point_obj(i)).unwrap();
        }
        assert_eq!(
            s.ids_sorted(),
            vec![ObjectId(1), ObjectId(3), ObjectId(5), ObjectId(9)]
        );
    }
}
