//! The object store: the mutable ground-truth population of uncertain
//! objects beneath the index's object layer.

use crate::error::ObjectError;
use crate::object::{ObjectId, UncertainObject};
use std::collections::HashMap;

/// Owns all live uncertain objects, addressed by [`ObjectId`].
///
/// The store is deliberately index-agnostic: the composite index's object
/// layer (buckets + o-table) references objects by id and is maintained by
/// the engine on every store mutation (the paper's §III-C.2 update flow:
/// an object update is a deletion followed by an insertion).
#[derive(Clone, Debug, Default)]
pub struct ObjectStore {
    objects: HashMap<ObjectId, UncertainObject>,
    next_id: u64,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh object id (never reused).
    pub fn allocate_id(&mut self) -> ObjectId {
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Inserts an object; the id must be unused.
    pub fn insert(&mut self, object: UncertainObject) -> Result<(), ObjectError> {
        let id = object.id;
        if self.objects.contains_key(&id) {
            return Err(ObjectError::DuplicateObject(id));
        }
        // Keep the id allocator ahead of externally minted ids.
        self.next_id = self.next_id.max(id.0 + 1);
        self.objects.insert(id, object);
        Ok(())
    }

    /// Removes an object, returning it.
    pub fn remove(&mut self, id: ObjectId) -> Result<UncertainObject, ObjectError> {
        self.objects
            .remove(&id)
            .ok_or(ObjectError::UnknownObject(id))
    }

    /// Looks up an object.
    pub fn get(&self, id: ObjectId) -> Result<&UncertainObject, ObjectError> {
        self.objects.get(&id).ok_or(ObjectError::UnknownObject(id))
    }

    /// Returns `true` if `id` is present.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.contains_key(&id)
    }

    /// Iterates over all objects (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &UncertainObject> {
        self.objects.values()
    }

    /// Object ids, sorted (deterministic iteration for tests/benches).
    pub fn ids_sorted(&self) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self.objects.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` iff no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::Point2;
    use idq_model::IndoorPoint;

    fn point_obj(id: u64) -> UncertainObject {
        UncertainObject::point_object(ObjectId(id), IndoorPoint::new(Point2::new(0.0, 0.0), 0))
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = ObjectStore::new();
        s.insert(point_obj(1)).unwrap();
        assert!(s.contains(ObjectId(1)));
        assert_eq!(s.get(ObjectId(1)).unwrap().id, ObjectId(1));
        assert_eq!(s.len(), 1);
        let o = s.remove(ObjectId(1)).unwrap();
        assert_eq!(o.id, ObjectId(1));
        assert!(s.is_empty());
        assert!(matches!(
            s.get(ObjectId(1)),
            Err(ObjectError::UnknownObject(_))
        ));
    }

    #[test]
    fn duplicate_rejected() {
        let mut s = ObjectStore::new();
        s.insert(point_obj(1)).unwrap();
        assert!(matches!(
            s.insert(point_obj(1)),
            Err(ObjectError::DuplicateObject(_))
        ));
    }

    #[test]
    fn id_allocation_skips_external_ids() {
        let mut s = ObjectStore::new();
        s.insert(point_obj(10)).unwrap();
        let id = s.allocate_id();
        assert!(id.0 > 10);
        assert!(!s.contains(id));
    }

    #[test]
    fn sorted_ids_deterministic() {
        let mut s = ObjectStore::new();
        for i in [5, 1, 9, 3] {
            s.insert(point_obj(i)).unwrap();
        }
        assert_eq!(
            s.ids_sorted(),
            vec![ObjectId(1), ObjectId(3), ObjectId(5), ObjectId(9)]
        );
    }
}
