//! The object store: the mutable ground-truth population of uncertain
//! objects beneath the index's object layer — **sharded by floor**.
//!
//! The store is split into one [`StoreShard`] per floor, each behind its
//! own [`Arc`]. Cloning a store therefore costs one reference-count bump
//! per floor, and mutating it deep-copies **only the shard(s) of the
//! floor(s) the mutation touches** (`Arc::make_mut` per shard): this is
//! what makes the engine's copy-on-write commits cheap — a version chain
//! of stores shares every untouched floor's population structurally.
//! Entries are additionally `Arc`-shared *within* a shard, so even the
//! touched shard's copy is one map clone of pointer-sized values, never a
//! deep copy of instance sets.

use crate::error::ObjectError;
use crate::object::{ObjectId, UncertainObject};
use crate::shards::{FloorShards, Shard};
use idq_model::Floor;
use std::collections::HashMap;
use std::sync::Arc;

/// One floor's slice of the object population: the per-floor unit of
/// structural sharing between store versions.
///
/// Shards are reached through [`ObjectStore::shard`] (read-only); all
/// mutation goes through the owning [`ObjectStore`], which routes by each
/// object's floor and copy-on-writes only the shards it lands in.
#[derive(Clone, Debug, Default)]
pub struct StoreShard {
    objects: HashMap<ObjectId, Arc<UncertainObject>>,
}

impl StoreShard {
    /// Number of objects on this floor.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` iff the floor is unpopulated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Whether this shard holds `id`.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.contains_key(&id)
    }

    /// Iterates over the floor's objects (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &UncertainObject> {
        self.objects.values().map(|arc| arc.as_ref())
    }
}

impl Shard for StoreShard {
    fn contains_id(&self, id: ObjectId) -> bool {
        self.contains(id)
    }
    fn is_empty(&self) -> bool {
        self.is_empty()
    }
}

/// Owns all live uncertain objects, addressed by [`ObjectId`].
///
/// The store is deliberately index-agnostic: the composite index's object
/// layer (buckets + o-table) references objects by id and is maintained by
/// the engine on every store mutation (the paper's §III-C.2 update flow:
/// an object update is a deletion followed by an insertion).
///
/// Internally the population is sharded by floor (see [`StoreShard`]):
/// lookups that only carry an id land on their shard through the O(1)
/// route directory (reads cost what they did before sharding), while
/// mutations route by the object's floor and copy-on-write exactly the
/// touched shard(s). A move across floors touches two shards; everything
/// else touches one.
#[derive(Clone, Debug, Default)]
pub struct ObjectStore {
    /// `shards[f]` is floor `f`'s slice of the population.
    shards: FloorShards<StoreShard>,
    /// Total live objects across all shards.
    count: usize,
    next_id: u64,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh object id (never reused).
    pub fn allocate_id(&mut self) -> ObjectId {
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Inserts an object; the id must be unused (on *any* floor).
    pub fn insert(&mut self, object: UncertainObject) -> Result<(), ObjectError> {
        let id = object.id;
        if self.shards.find(id).is_some() {
            return Err(ObjectError::DuplicateObject(id));
        }
        self.reserve_id(id);
        let floor = object.floor;
        self.shards
            .slot_mut(floor)
            .objects
            .insert(id, Arc::new(object));
        self.shards.file(id, floor);
        self.count += 1;
        Ok(())
    }

    /// Keeps the id allocator ahead of an externally minted id *before* its
    /// insert lands ([`ObjectStore::insert`] reserves implicitly). Batch
    /// staging reserves every external id up front so ids it allocates for
    /// interleaved engine-sampled inserts match what sequential application
    /// would have produced — and never collide.
    pub fn reserve_id(&mut self, id: ObjectId) {
        self.next_id = self.next_id.max(id.0 + 1);
    }

    /// Removes an object, returning it. When the entry is still shared with
    /// another store version (copy-on-write clones), the returned value is
    /// a copy and the shared entry stays intact in the other versions.
    pub fn remove(&mut self, id: ObjectId) -> Result<UncertainObject, ObjectError> {
        let f = self.shards.find(id).ok_or(ObjectError::UnknownObject(id))?;
        let arc = self
            .shards
            .make_mut(f)
            .objects
            .remove(&id)
            .expect("the route located the id");
        self.shards.unfile(id);
        self.count -= 1;
        Ok(Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Removes an object without materialising the removed value — the
    /// cheap form of [`ObjectStore::remove`] for callers that only need the
    /// entry gone (a shared entry is just un-referenced, never copied).
    pub fn discard(&mut self, id: ObjectId) -> Result<(), ObjectError> {
        let f = self.shards.find(id).ok_or(ObjectError::UnknownObject(id))?;
        self.shards.make_mut(f).objects.remove(&id);
        self.shards.unfile(id);
        self.count -= 1;
        Ok(())
    }

    /// Replaces an existing object in place, returning the previous value —
    /// the atomic move primitive (a move never leaves the store without the
    /// object, unlike a remove-then-insert pair). The id must be present.
    /// As with [`ObjectStore::remove`], a previous value still shared with
    /// another store version is returned as a copy. A move across floors
    /// re-homes the entry, touching both floors' shards.
    pub fn replace(&mut self, object: UncertainObject) -> Result<UncertainObject, ObjectError> {
        let id = object.id;
        let old_f = self.shards.find(id).ok_or(ObjectError::UnknownObject(id))?;
        let new_f = self.shards.slot(object.floor);
        let old = if old_f == new_f {
            let slot = self
                .shards
                .make_mut(new_f)
                .objects
                .get_mut(&id)
                .expect("caller located the id");
            std::mem::replace(slot, Arc::new(object))
        } else {
            let floor = object.floor;
            let old = self
                .shards
                .make_mut(old_f)
                .objects
                .remove(&id)
                .expect("caller located the id");
            self.shards
                .make_mut(new_f)
                .objects
                .insert(id, Arc::new(object));
            self.shards.file(id, floor);
            old
        };
        Ok(Arc::try_unwrap(old).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Replaces an existing object without materialising the previous
    /// value — the cheap form of [`ObjectStore::replace`] for callers that
    /// do not need the old state back (a shared previous entry is just
    /// un-referenced, never copied).
    pub fn replace_discarding(&mut self, object: UncertainObject) -> Result<(), ObjectError> {
        let id = object.id;
        let old_f = self.shards.find(id).ok_or(ObjectError::UnknownObject(id))?;
        self.replace_in_shard(old_f, object);
        Ok(())
    }

    /// Re-files the entry held by shard `old_f` under the object's floor.
    fn replace_in_shard(&mut self, old_f: usize, object: UncertainObject) {
        let id = object.id;
        let floor = object.floor;
        let new_f = self.shards.slot(floor);
        if old_f != new_f {
            self.shards.make_mut(old_f).objects.remove(&id);
            self.shards.file(id, floor);
        }
        self.shards
            .make_mut(new_f)
            .objects
            .insert(id, Arc::new(object));
    }

    /// The id-allocation watermark: the next id [`ObjectStore::allocate_id`]
    /// would hand out. The allocator is part of a store value's observable
    /// state — a copy-on-write transaction that is dropped discards its
    /// allocations with it, which tests assert through this accessor.
    pub fn id_watermark(&self) -> u64 {
        self.next_id
    }

    /// Rewinds the id allocator to a watermark previously read with
    /// [`ObjectStore::id_watermark`] — for callers managing a store value
    /// directly (the engine's transactions instead discard their whole
    /// store copy, allocator included). If a live object holds an id at or
    /// above `watermark`, the rewind stops just past the live population's
    /// ceiling rather than risking a duplicate allocation.
    pub fn restore_id_watermark(&mut self, watermark: u64) {
        let floor = self.iter().map(|o| o.id.0 + 1).max().unwrap_or(0);
        self.next_id = watermark.max(floor);
    }

    /// Looks up an object.
    pub fn get(&self, id: ObjectId) -> Result<&UncertainObject, ObjectError> {
        self.shards
            .find(id)
            .and_then(|f| self.shards.get(f as Floor))
            .and_then(|s| s.objects.get(&id))
            .map(|arc| arc.as_ref())
            .ok_or(ObjectError::UnknownObject(id))
    }

    /// Looks up an object **shared**: the store's own reference-counted
    /// entry. History retention holds epochs' worth of object states; the
    /// shared form keeps a retained state one pointer, not a deep copy of
    /// the instance set, for as long as some version still holds the same
    /// entry.
    pub fn get_shared(&self, id: ObjectId) -> Result<Arc<UncertainObject>, ObjectError> {
        self.shards
            .find(id)
            .and_then(|f| self.shards.get(f as Floor))
            .and_then(|s| s.objects.get(&id))
            .map(Arc::clone)
            .ok_or(ObjectError::UnknownObject(id))
    }

    /// Returns `true` if `id` is present.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.shards.find(id).is_some()
    }

    /// The floor whose shard holds `id`, if present. Note this is the
    /// *shard* floor (where the object was filed), always equal to the
    /// object's own `floor` field.
    pub fn floor_of(&self, id: ObjectId) -> Option<Floor> {
        self.shards.find(id).map(|f| f as Floor)
    }

    /// Iterates over all objects (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &UncertainObject> {
        self.shards.iter().flat_map(|s| s.iter())
    }

    /// Object ids, sorted (deterministic iteration for tests/benches).
    pub fn ids_sorted(&self) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self.iter().map(|o| o.id).collect();
        v.sort_unstable();
        v
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` iff no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    // ---- shard introspection (structural-sharing contract) ---------------

    /// Number of floor shards (highest floor an object was ever filed
    /// under, plus one — shards are never dropped, only emptied).
    pub fn shard_count(&self) -> usize {
        self.shards.slot_count()
    }

    /// Read access to one floor's shard, if that floor has a slot.
    pub fn shard(&self, floor: Floor) -> Option<&StoreShard> {
        self.shards.get(floor)
    }

    /// Whether `self` and `other` share floor `floor`'s shard
    /// **structurally** (see [`FloorShards::same_shard`]). Tests use this
    /// to pin down the sharding invariant: a commit deep-copies only the
    /// shards it touches.
    pub fn same_shard(&self, other: &Self, floor: Floor) -> bool {
        self.shards.same_shard(&other.shards, floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::Point2;
    use idq_model::IndoorPoint;

    // Shards cross thread boundaries twice in the engine: staged batches
    // carry prepared objects onto submitting threads, and committed
    // stores are `Arc`-shared with reader snapshots. Losing `Send`/`Sync`
    // must be a compile error, not a stress-test failure.
    const fn assert_send_sync<T: Send + Sync>() {}
    const _: () = {
        assert_send_sync::<StoreShard>();
        assert_send_sync::<ObjectStore>();
        assert_send_sync::<UncertainObject>();
    };

    fn point_obj(id: u64) -> UncertainObject {
        UncertainObject::point_object(ObjectId(id), IndoorPoint::new(Point2::new(0.0, 0.0), 0))
    }

    fn point_obj_on(id: u64, floor: Floor) -> UncertainObject {
        UncertainObject::point_object(ObjectId(id), IndoorPoint::new(Point2::new(0.0, 0.0), floor))
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = ObjectStore::new();
        s.insert(point_obj(1)).unwrap();
        assert!(s.contains(ObjectId(1)));
        assert_eq!(s.get(ObjectId(1)).unwrap().id, ObjectId(1));
        assert_eq!(s.len(), 1);
        let o = s.remove(ObjectId(1)).unwrap();
        assert_eq!(o.id, ObjectId(1));
        assert!(s.is_empty());
        assert!(matches!(
            s.get(ObjectId(1)),
            Err(ObjectError::UnknownObject(_))
        ));
    }

    #[test]
    fn duplicate_rejected() {
        let mut s = ObjectStore::new();
        s.insert(point_obj(1)).unwrap();
        assert!(matches!(
            s.insert(point_obj(1)),
            Err(ObjectError::DuplicateObject(_))
        ));
        // Duplicates are rejected across floors too: ids are global.
        assert!(matches!(
            s.insert(point_obj_on(1, 3)),
            Err(ObjectError::DuplicateObject(_))
        ));
    }

    #[test]
    fn replace_swaps_in_place() {
        let mut s = ObjectStore::new();
        s.insert(point_obj(1)).unwrap();
        let replacement =
            UncertainObject::point_object(ObjectId(1), IndoorPoint::new(Point2::new(9.0, 9.0), 0));
        let old = s.replace(replacement).unwrap();
        assert_eq!(old.region.center, Point2::new(0.0, 0.0));
        assert_eq!(
            s.get(ObjectId(1)).unwrap().region.center,
            Point2::new(9.0, 9.0)
        );
        assert_eq!(s.len(), 1);
        assert!(matches!(
            s.replace(point_obj(7)),
            Err(ObjectError::UnknownObject(_))
        ));
    }

    #[test]
    fn replace_across_floors_rehomes_the_entry() {
        let mut s = ObjectStore::new();
        s.insert(point_obj_on(1, 0)).unwrap();
        let moved = point_obj_on(1, 2);
        let old = s.replace(moved).unwrap();
        assert_eq!(old.floor, 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.floor_of(ObjectId(1)), Some(2));
        assert!(s.shard(0).unwrap().is_empty());
        assert_eq!(s.shard(2).unwrap().len(), 1);
        // And the discarding form.
        s.replace_discarding(point_obj_on(1, 1)).unwrap();
        assert_eq!(s.floor_of(ObjectId(1)), Some(1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn watermark_round_trip_and_safety_floor() {
        let mut s = ObjectStore::new();
        let w = s.id_watermark();
        let a = s.allocate_id();
        let b = s.allocate_id();
        assert_eq!((a, b), (ObjectId(w), ObjectId(w + 1)));
        // Nothing was inserted: the rewind fully restores the allocator.
        s.restore_id_watermark(w);
        assert_eq!(s.allocate_id(), ObjectId(w));
        // With a live object above the watermark, the rewind stops at the
        // live population's ceiling instead of risking a duplicate id.
        s.insert(point_obj(10)).unwrap();
        s.restore_id_watermark(0);
        assert_eq!(s.allocate_id(), ObjectId(11));
    }

    #[test]
    fn id_allocation_skips_external_ids() {
        let mut s = ObjectStore::new();
        s.insert(point_obj(10)).unwrap();
        let id = s.allocate_id();
        assert!(id.0 > 10);
        assert!(!s.contains(id));
    }

    #[test]
    fn cloned_stores_share_entries_until_mutated() {
        let mut a = ObjectStore::new();
        a.insert(point_obj(1)).unwrap();
        a.insert(point_obj(2)).unwrap();
        let mut b = a.clone();
        // Removing from the clone leaves the original intact, and the
        // removed value is a faithful copy of the shared entry.
        let o = b.remove(ObjectId(1)).unwrap();
        assert_eq!(o.id, ObjectId(1));
        assert!(a.contains(ObjectId(1)));
        assert!(!b.contains(ObjectId(1)));
        // Replacing in the clone does not disturb the original either.
        let replacement =
            UncertainObject::point_object(ObjectId(2), IndoorPoint::new(Point2::new(7.0, 7.0), 0));
        let old = b.replace(replacement).unwrap();
        assert_eq!(old.region.center, Point2::new(0.0, 0.0));
        assert_eq!(
            a.get(ObjectId(2)).unwrap().region.center,
            Point2::new(0.0, 0.0)
        );
        assert_eq!(
            b.get(ObjectId(2)).unwrap().region.center,
            Point2::new(7.0, 7.0)
        );
        // discard drops without materialising.
        b.discard(ObjectId(2)).unwrap();
        assert!(b.is_empty());
        assert!(matches!(
            b.discard(ObjectId(2)),
            Err(ObjectError::UnknownObject(_))
        ));
    }

    #[test]
    fn cloned_stores_share_untouched_floor_shards() {
        let mut a = ObjectStore::new();
        a.insert(point_obj_on(1, 0)).unwrap();
        a.insert(point_obj_on(2, 1)).unwrap();
        a.insert(point_obj_on(3, 2)).unwrap();
        let mut b = a.clone();
        assert!((0..3).all(|f| a.same_shard(&b, f)), "clones share all");
        // A floor-1 mutation deep-copies floor 1's shard only.
        b.replace_discarding({
            let mut o = point_obj_on(2, 1);
            o.region.center = Point2::new(5.0, 5.0);
            o
        })
        .unwrap();
        assert!(a.same_shard(&b, 0), "floor 0 untouched");
        assert!(!a.same_shard(&b, 1), "floor 1 copied");
        assert!(a.same_shard(&b, 2), "floor 2 untouched");
        // A cross-floor move touches exactly its two shards.
        let mut c = b.clone();
        c.replace_discarding(point_obj_on(3, 0)).unwrap();
        assert!(!b.same_shard(&c, 0));
        assert!(b.same_shard(&c, 1));
        assert!(!b.same_shard(&c, 2));
    }

    #[test]
    fn sorted_ids_deterministic() {
        let mut s = ObjectStore::new();
        for i in [5, 1, 9, 3] {
            s.insert(point_obj(i)).unwrap();
        }
        assert_eq!(
            s.ids_sorted(),
            vec![ObjectId(1), ObjectId(3), ObjectId(5), ObjectId(9)]
        );
    }
}
