//! [`FloorShards`] — the generic per-floor copy-on-write shard vector
//! shared by the object store and the index's object layer.
//!
//! Both layers slice their id-keyed state by floor behind one [`Arc`] per
//! floor, and both need the same scaffolding: grow-on-demand slots, an
//! O(1) id → floor **route directory**, `Arc::make_mut` on exactly the
//! touched shard, and structural-sharing introspection for the tests that
//! pin the sharding invariant. Keeping that scaffolding here means the
//! shard semantics (e.g. the absent-slot-vs-empty-shard sharing rule)
//! cannot silently diverge between the crates.
//!
//! The route directory is what keeps **reads** at pre-sharding cost: a
//! `store.get(id)` / o-table lookup lands on its shard in one dense-array
//! read instead of probing every floor's map. It is a flat `Vec<u32>`
//! indexed by id (plus a spill map for absurdly large external ids),
//! `Arc`-shared like the shards: copying it on first touch per commit is
//! a ~4 bytes/object `memcpy` — microseconds, against the touched shard's
//! own map clone.

use crate::object::ObjectId;
use idq_model::Floor;
use std::collections::HashMap;
use std::sync::Arc;

/// One floor's slice of an id-keyed layer.
pub trait Shard: Clone + Default {
    /// Whether the slice holds `id`.
    fn contains_id(&self, id: ObjectId) -> bool;
    /// `true` iff the slice holds nothing.
    fn is_empty(&self) -> bool;
}

/// Ids below this use the dense route table (4 bytes per id ever
/// allocated); larger ids spill to a hash map so an absurd external id
/// cannot balloon the table.
const DENSE_ROUTE_CAP: u64 = 1 << 22;

/// Dense-slot sentinel for "no entry".
const ABSENT: u32 = u32::MAX;

/// The id → floor directory: dense for engine-allocated (sequential) ids,
/// spilling to a map for arbitrary external ids.
#[derive(Clone, Debug, Default)]
struct Route {
    dense: Vec<u32>,
    spill: HashMap<ObjectId, Floor>,
}

impl Route {
    fn get(&self, id: ObjectId) -> Option<Floor> {
        if id.0 < DENSE_ROUTE_CAP {
            match self.dense.get(id.0 as usize) {
                Some(&f) if f != ABSENT => Some(f as Floor),
                _ => None,
            }
        } else {
            self.spill.get(&id).copied()
        }
    }

    fn set(&mut self, id: ObjectId, floor: Floor) {
        if id.0 < DENSE_ROUTE_CAP {
            let i = id.0 as usize;
            if self.dense.len() <= i {
                self.dense.resize(i + 1, ABSENT);
            }
            self.dense[i] = floor as u32;
        } else {
            self.spill.insert(id, floor);
        }
    }

    fn clear(&mut self, id: ObjectId) {
        if id.0 < DENSE_ROUTE_CAP {
            if let Some(slot) = self.dense.get_mut(id.0 as usize) {
                *slot = ABSENT;
            }
        } else {
            self.spill.remove(&id);
        }
    }
}

/// A grow-on-demand vector of `Arc`-shared floor shards: `shards[f]` is
/// floor `f`'s slice, and a shared route directory maps each filed id to
/// its floor in O(1). Cloning is one refcount bump per floor (plus one
/// for the route); mutation goes through [`FloorShards::make_mut`] /
/// [`FloorShards::slot_mut`], which deep-copy exactly one shard — callers
/// keep the route in sync with [`FloorShards::file`] /
/// [`FloorShards::unfile`] next to every shard-map insert/remove (the
/// layers' `validate()` asserts the sync).
#[derive(Clone, Debug, Default)]
pub struct FloorShards<S> {
    shards: Vec<Arc<S>>,
    route: Arc<Route>,
}

impl<S: Shard> FloorShards<S> {
    /// Number of floor slots (highest floor ever filed under, plus one —
    /// slots are never dropped, only emptied).
    pub fn slot_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one floor's shard, if that floor has a slot.
    pub fn get(&self, floor: Floor) -> Option<&S> {
        self.shards.get(floor as usize).map(|s| s.as_ref())
    }

    /// Iterates over the shards in floor order.
    pub fn iter(&self) -> impl Iterator<Item = &S> {
        self.shards.iter().map(|s| s.as_ref())
    }

    /// The floor (= shard index) holding `id` — one route-directory read.
    pub fn find(&self, id: ObjectId) -> Option<usize> {
        self.route.get(id).map(|f| f as usize)
    }

    /// Records that `id` is filed under `floor`. Call next to the shard
    /// map insert (and on re-homing).
    pub fn file(&mut self, id: ObjectId, floor: Floor) {
        Arc::make_mut(&mut self.route).set(id, floor);
    }

    /// Removes `id` from the route directory. Call next to the shard map
    /// remove.
    pub fn unfile(&mut self, id: ObjectId) {
        Arc::make_mut(&mut self.route).clear(id);
    }

    /// Mutable access to shard `idx`, deep-copying it if it is shared
    /// with another version (`Arc::make_mut`).
    pub fn make_mut(&mut self, idx: usize) -> &mut S {
        Arc::make_mut(&mut self.shards[idx])
    }

    /// Ensures a slot exists for `floor` and returns its index.
    ///
    /// Slots are never dropped, so growth is permanent: callers are
    /// expected to validate floors against the world they model before
    /// filing under them (the engine rejects out-of-space floors up
    /// front) — an absurd floor here would cost `floor + 1` slots in
    /// every later clone.
    pub fn slot(&mut self, floor: Floor) -> usize {
        let f = floor as usize;
        if self.shards.len() <= f {
            self.shards.resize_with(f + 1, Arc::default);
        }
        f
    }

    /// [`FloorShards::slot`] + [`FloorShards::make_mut`] in one step.
    pub fn slot_mut(&mut self, floor: Floor) -> &mut S {
        let f = self.slot(floor);
        self.make_mut(f)
    }

    /// Whether `self` and `other` share floor `floor`'s shard
    /// **structurally** (the same heap allocation, not merely equal
    /// contents). Two versions related by commits that never touched
    /// `floor` share it; absent slots on both sides count as shared (both
    /// trivially empty), as does an absent slot against an empty shard.
    pub fn same_shard(&self, other: &Self, floor: Floor) -> bool {
        match (
            self.shards.get(floor as usize),
            other.shards.get(floor as usize),
        ) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            (Some(s), None) | (None, Some(s)) => s.is_empty(),
        }
    }

    /// Test support: asserts the route directory agrees with the shard
    /// contents for `id` being filed under `floor` (or not filed at all
    /// when `floor` is `None`). Panics on divergence.
    pub fn assert_routed(&self, id: ObjectId, floor: Option<Floor>) {
        assert_eq!(
            self.route.get(id),
            floor,
            "route directory diverged for {id:?}"
        );
        if let Some(f) = floor {
            assert!(
                self.get(f).is_some_and(|s| s.contains_id(id)),
                "route says {id:?} on floor {f} but the shard disagrees"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[derive(Clone, Debug, Default)]
    struct TestShard(HashSet<ObjectId>);

    impl Shard for TestShard {
        fn contains_id(&self, id: ObjectId) -> bool {
            self.0.contains(&id)
        }
        fn is_empty(&self) -> bool {
            self.0.is_empty()
        }
    }

    fn file(s: &mut FloorShards<TestShard>, id: u64, floor: Floor) {
        s.slot_mut(floor).0.insert(ObjectId(id));
        s.file(ObjectId(id), floor);
    }

    #[test]
    fn slots_grow_and_route_in_o1() {
        let mut s: FloorShards<TestShard> = FloorShards::default();
        assert_eq!(s.slot_count(), 0);
        assert!(s.find(ObjectId(1)).is_none());
        file(&mut s, 1, 2);
        assert_eq!(s.slot_count(), 3);
        assert_eq!(s.find(ObjectId(1)), Some(2));
        s.assert_routed(ObjectId(1), Some(2));
        assert!(s.get(0).unwrap().is_empty());
        assert!(s.get(5).is_none());
        // Unfile clears the route.
        s.make_mut(2).0.remove(&ObjectId(1));
        s.unfile(ObjectId(1));
        assert!(s.find(ObjectId(1)).is_none());
        s.assert_routed(ObjectId(1), None);
    }

    #[test]
    fn huge_ids_spill_instead_of_ballooning_the_dense_table() {
        let mut s: FloorShards<TestShard> = FloorShards::default();
        let huge = DENSE_ROUTE_CAP + 7;
        file(&mut s, huge, 1);
        assert_eq!(s.find(ObjectId(huge)), Some(1));
        assert!(
            s.route.dense.is_empty(),
            "spilled id must not grow the dense table"
        );
        s.unfile(ObjectId(huge));
        assert!(s.find(ObjectId(huge)).is_none());
    }

    #[test]
    fn clones_share_until_touched_and_absent_equals_empty() {
        let mut a: FloorShards<TestShard> = FloorShards::default();
        file(&mut a, 1, 0);
        file(&mut a, 2, 1);
        let mut b = a.clone();
        assert!(a.same_shard(&b, 0) && a.same_shard(&b, 1));
        file(&mut b, 3, 1);
        assert!(a.same_shard(&b, 0), "untouched floor stays shared");
        assert!(!a.same_shard(&b, 1), "touched floor copied");
        assert!(a.find(ObjectId(3)).is_none(), "route is versioned too");
        assert_eq!(b.find(ObjectId(3)), Some(1));
        // Absent vs absent and absent vs empty both count as shared;
        // absent vs non-empty does not.
        assert!(a.same_shard(&b, 7));
        let mut c = a.clone();
        c.slot(3);
        assert!(a.same_shard(&c, 3), "absent vs empty slot");
        let mut d = a.clone();
        file(&mut d, 9, 3);
        assert!(!a.same_shard(&d, 3), "absent vs populated slot");
    }
}
