//! Uncertain indoor moving objects (§II-B of the paper).
//!
//! Indoor positioning (RFID, Wi-Fi, Bluetooth) reports object locations as
//! regions, not points. Following the paper we represent a moving object
//! `O` by a circular uncertainty region plus a discrete instance set
//! `{(s_i, p_i)}` with `Σ p_i = 1` — the instance representation is general
//! for arbitrary distributions (§II-B).
//!
//! * [`UncertainObject`] / [`Instance`] — the objects themselves;
//! * [`Subregions`] — the partition-aligned decomposition `O = ∪ S[j]`
//!   that the distance cases and the probabilistic bounds operate on;
//! * [`GaussianSampler`] — the paper's instance generator (§V-A: 100
//!   samples, Gaussian around the region centre, σ = diameter/6);
//! * [`ObjectStore`] — the mutable population of objects, the ground truth
//!   beneath the index's object layer, sharded by floor ([`StoreShard`])
//!   so copy-on-write store versions share every untouched floor.

pub mod error;
pub mod object;
pub mod sampler;
pub mod shards;
pub mod store;
pub mod subregion;
pub mod wire;

pub use error::ObjectError;
pub use object::{Instance, ObjectId, UncertainObject};
pub use sampler::GaussianSampler;
pub use shards::{FloorShards, Shard};
pub use store::{ObjectStore, StoreShard};
pub use subregion::{Subregion, Subregions};
