//! Axis-aligned rectangles with the point-distance primitives used by the
//! index tiers and the distance bounds.

use crate::fp::EPSILON;
use crate::point::Point2;

/// A closed axis-aligned rectangle `[lo.x, hi.x] × [lo.y, hi.y]`.
///
/// Rectangles are the geometry of index units (decomposed partitions) and of
/// every tree node in the indR-tree tier. Degenerate (zero-width) rectangles
/// are permitted; inverted ones are not constructible through [`Rect2::new`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect2 {
    /// Lower-left corner.
    pub lo: Point2,
    /// Upper-right corner.
    pub hi: Point2,
}

impl Rect2 {
    /// Creates the rectangle spanning `a` and `b` (corners in any order).
    #[inline]
    pub fn new(a: Point2, b: Point2) -> Self {
        Rect2 {
            lo: Point2::new(a.x.min(b.x), a.y.min(b.y)),
            hi: Point2::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle from its bounds `(x0, y0)` to `(x1, y1)`.
    #[inline]
    pub fn from_bounds(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect2::new(Point2::new(x0, y0), Point2::new(x1, y1))
    }

    /// The empty rectangle for running unions (inverted sentinel bounds).
    ///
    /// `union` with any real rectangle yields that rectangle.
    #[inline]
    pub fn empty_sentinel() -> Self {
        Rect2 {
            lo: Point2::new(f64::INFINITY, f64::INFINITY),
            hi: Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Returns `true` for the sentinel produced by [`Rect2::empty_sentinel`].
    #[inline]
    pub fn is_empty_sentinel(&self) -> bool {
        self.lo.x > self.hi.x
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi.x - self.lo.x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.hi.y - self.lo.y
    }

    /// Area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Perimeter (the R*-tree "margin").
    #[inline]
    pub fn margin(&self) -> f64 {
        2.0 * (self.width() + self.height())
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point2 {
        self.lo.midpoint(self.hi)
    }

    /// Ratio of the short side to the long side, in `[0, 1]`.
    ///
    /// This is the quantity Algorithm 3 compares against `T_shape`; a value
    /// of 1 is a square. A degenerate rectangle has ratio 0.
    #[inline]
    pub fn aspect_ratio(&self) -> f64 {
        let (w, h) = (self.width(), self.height());
        let (short, long) = if w < h { (w, h) } else { (h, w) };
        if long <= 0.0 {
            1.0
        } else {
            short / long
        }
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.lo.x - EPSILON
            && p.x <= self.hi.x + EPSILON
            && p.y >= self.lo.y - EPSILON
            && p.y <= self.hi.y + EPSILON
    }

    /// Returns `true` if the closed rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect2) -> bool {
        self.lo.x <= other.hi.x + EPSILON
            && other.lo.x <= self.hi.x + EPSILON
            && self.lo.y <= other.hi.y + EPSILON
            && other.lo.y <= self.hi.y + EPSILON
    }

    /// The intersection rectangle, if non-empty.
    pub fn intersection(&self, other: &Rect2) -> Option<Rect2> {
        let lo = Point2::new(self.lo.x.max(other.lo.x), self.lo.y.max(other.lo.y));
        let hi = Point2::new(self.hi.x.min(other.hi.x), self.hi.y.min(other.hi.y));
        if lo.x <= hi.x + EPSILON && lo.y <= hi.y + EPSILON {
            Some(Rect2 { lo, hi })
        } else {
            None
        }
    }

    /// Overlap area with `other` (0 when disjoint).
    #[inline]
    pub fn overlap_area(&self, other: &Rect2) -> f64 {
        self.intersection(other).map_or(0.0, |r| r.area())
    }

    /// Smallest rectangle covering both operands.
    #[inline]
    pub fn union(&self, other: &Rect2) -> Rect2 {
        Rect2 {
            lo: Point2::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point2::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// Returns `true` if `other` is fully inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect2) -> bool {
        self.lo.x <= other.lo.x + EPSILON
            && self.lo.y <= other.lo.y + EPSILON
            && self.hi.x >= other.hi.x - EPSILON
            && self.hi.y >= other.hi.y - EPSILON
    }

    /// Minimum Euclidean distance from `p` to the rectangle (0 if inside).
    ///
    /// This is `MINDIST` of the classic R-tree branch-and-bound search.
    #[inline]
    pub fn min_dist(&self, p: Point2) -> f64 {
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum Euclidean distance from `p` to any point of the rectangle.
    #[inline]
    pub fn max_dist(&self, p: Point2) -> f64 {
        let dx = (p.x - self.lo.x).abs().max((p.x - self.hi.x).abs());
        let dy = (p.y - self.lo.y).abs().max((p.y - self.hi.y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// The point of the rectangle closest to `p` (`p` itself if inside).
    #[inline]
    pub fn clamp_point(&self, p: Point2) -> Point2 {
        Point2::new(
            p.x.clamp(self.lo.x, self.hi.x),
            p.y.clamp(self.lo.y, self.hi.y),
        )
    }

    /// The four corners, counter-clockwise from `lo`.
    #[inline]
    pub fn corners(&self) -> [Point2; 4] {
        [
            self.lo,
            Point2::new(self.hi.x, self.lo.y),
            self.hi,
            Point2::new(self.lo.x, self.hi.y),
        ]
    }

    /// Splits the rectangle at coordinate `c` perpendicular to the x-axis.
    ///
    /// Returns `None` when the cut misses the interior.
    pub fn split_at_x(&self, c: f64) -> Option<(Rect2, Rect2)> {
        if c <= self.lo.x + EPSILON || c >= self.hi.x - EPSILON {
            return None;
        }
        Some((
            Rect2::from_bounds(self.lo.x, self.lo.y, c, self.hi.y),
            Rect2::from_bounds(c, self.lo.y, self.hi.x, self.hi.y),
        ))
    }

    /// Splits the rectangle at coordinate `c` perpendicular to the y-axis.
    pub fn split_at_y(&self, c: f64) -> Option<(Rect2, Rect2)> {
        if c <= self.lo.y + EPSILON || c >= self.hi.y - EPSILON {
            return None;
        }
        Some((
            Rect2::from_bounds(self.lo.x, self.lo.y, self.hi.x, c),
            Rect2::from_bounds(self.lo.x, c, self.hi.x, self.hi.y),
        ))
    }
}

impl std::fmt::Display for Rect2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} — {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::approx_eq;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect2 {
        Rect2::from_bounds(x0, y0, x1, y1)
    }

    #[test]
    fn constructor_normalizes_corners() {
        let a = Rect2::new(Point2::new(5.0, 1.0), Point2::new(2.0, 7.0));
        assert_eq!(a, r(2.0, 1.0, 5.0, 7.0));
    }

    #[test]
    fn min_dist_zero_inside_and_correct_outside() {
        let b = r(0.0, 0.0, 10.0, 10.0);
        assert!(approx_eq(b.min_dist(Point2::new(5.0, 5.0)), 0.0));
        assert!(approx_eq(b.min_dist(Point2::new(13.0, 14.0)), 5.0));
        assert!(approx_eq(b.min_dist(Point2::new(-3.0, 5.0)), 3.0));
    }

    #[test]
    fn max_dist_reaches_far_corner() {
        let b = r(0.0, 0.0, 10.0, 10.0);
        assert!(approx_eq(
            b.max_dist(Point2::new(0.0, 0.0)),
            (200.0f64).sqrt()
        ));
        assert!(approx_eq(
            b.max_dist(Point2::new(5.0, 5.0)),
            (50.0f64).sqrt()
        ));
    }

    #[test]
    fn min_le_max_everywhere() {
        let b = r(-4.0, 2.0, 9.0, 3.5);
        for p in [
            Point2::new(0.0, 0.0),
            Point2::new(100.0, -50.0),
            Point2::new(2.0, 3.0),
        ] {
            assert!(b.min_dist(p) <= b.max_dist(p));
        }
    }

    #[test]
    fn union_and_intersection() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        let b = r(2.0, 2.0, 6.0, 6.0);
        assert_eq!(a.union(&b), r(0.0, 0.0, 6.0, 6.0));
        assert_eq!(a.intersection(&b).unwrap(), r(2.0, 2.0, 4.0, 4.0));
        assert!(approx_eq(a.overlap_area(&b), 4.0));
        let c = r(10.0, 10.0, 11.0, 11.0);
        assert!(a.intersection(&c).is_none());
        assert!(approx_eq(a.overlap_area(&c), 0.0));
    }

    #[test]
    fn empty_sentinel_is_union_identity() {
        let e = Rect2::empty_sentinel();
        assert!(e.is_empty_sentinel());
        let a = r(1.0, 2.0, 3.0, 4.0);
        assert_eq!(e.union(&a), a);
    }

    #[test]
    fn aspect_ratio_basics() {
        assert!(approx_eq(r(0.0, 0.0, 10.0, 10.0).aspect_ratio(), 1.0));
        assert!(approx_eq(r(0.0, 0.0, 10.0, 2.0).aspect_ratio(), 0.2));
        assert!(approx_eq(r(0.0, 0.0, 2.0, 10.0).aspect_ratio(), 0.2));
    }

    #[test]
    fn splits_partition_area() {
        let b = r(0.0, 0.0, 10.0, 4.0);
        let (l, rgt) = b.split_at_x(6.0).unwrap();
        assert!(approx_eq(l.area() + rgt.area(), b.area()));
        assert!(b.split_at_x(0.0).is_none());
        assert!(b.split_at_x(10.0).is_none());
        let (lo, hi) = b.split_at_y(1.0).unwrap();
        assert!(approx_eq(lo.area() + hi.area(), b.area()));
    }

    #[test]
    fn clamp_point_is_nearest() {
        let b = r(0.0, 0.0, 10.0, 10.0);
        let p = Point2::new(15.0, -3.0);
        let c = b.clamp_point(p);
        assert_eq!(c, Point2::new(10.0, 0.0));
        assert!(approx_eq(p.dist(c), b.min_dist(p)));
    }
}
