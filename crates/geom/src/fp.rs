//! Floating-point helpers: approximate comparison and a totally ordered
//! `f64` wrapper for use in heaps and sort keys.

/// Absolute tolerance used for geometric predicates throughout the library.
///
/// Indoor coordinates are metres; 1e-9 m is far below any physically
/// meaningful resolution while staying well above `f64` rounding noise for
/// building-scale magnitudes (≤ 10^4 m).
pub const EPSILON: f64 = 1e-9;

/// Returns `true` when `a` and `b` differ by at most [`EPSILON`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON
}

/// A totally ordered `f64` for binary heaps and deterministic sorting.
///
/// Ordering follows [`f64::total_cmp`]; NaNs sort after all other values, but
/// the library never produces NaN distances (all inputs are finite and
/// distances are sums of square roots of non-negative numbers).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrdF64 {}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl From<f64> for OrdF64 {
    #[inline]
    fn from(v: f64) -> Self {
        OrdF64(v)
    }
}

impl std::fmt::Display for OrdF64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_tolerates_epsilon() {
        assert!(approx_eq(1.0, 1.0 + EPSILON / 2.0));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
    }

    #[test]
    fn ordf64_orders_totally() {
        let mut v = vec![OrdF64(3.0), OrdF64(-1.0), OrdF64(2.5)];
        v.sort();
        assert_eq!(v, vec![OrdF64(-1.0), OrdF64(2.5), OrdF64(3.0)]);
    }

    #[test]
    fn ordf64_works_in_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut h = BinaryHeap::new();
        h.push(Reverse(OrdF64(2.0)));
        h.push(Reverse(OrdF64(1.0)));
        h.push(Reverse(OrdF64(3.0)));
        assert_eq!(h.pop().unwrap().0, OrdF64(1.0));
    }
}
