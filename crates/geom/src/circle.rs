//! Circles — the uncertainty regions of indoor moving objects (§V-A).

use crate::point::Point2;
use crate::rect::Rect2;

/// A circle `(c, r)`: centred at `c` with radius `r` (paper notation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Circle {
    /// Centre.
    pub center: Point2,
    /// Radius, metres (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle; the radius is clamped to be non-negative.
    #[inline]
    pub fn new(center: Point2, radius: f64) -> Self {
        Circle {
            center,
            radius: radius.max(0.0),
        }
    }

    /// Returns `true` if `p` lies inside or on the circle.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        self.center.dist_sq(p) <= self.radius * self.radius + crate::fp::EPSILON
    }

    /// Minimum distance from `p` to the disk (0 if inside).
    #[inline]
    pub fn min_dist(&self, p: Point2) -> f64 {
        (self.center.dist(p) - self.radius).max(0.0)
    }

    /// Maximum distance from `p` to any point of the disk.
    #[inline]
    pub fn max_dist(&self, p: Point2) -> f64 {
        self.center.dist(p) + self.radius
    }

    /// Tight axis-aligned bounding box.
    #[inline]
    pub fn bbox(&self) -> Rect2 {
        Rect2::from_bounds(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )
    }

    /// Returns `true` if the disk and the rectangle share a point.
    #[inline]
    pub fn intersects_rect(&self, r: &Rect2) -> bool {
        r.min_dist(self.center) <= self.radius + crate::fp::EPSILON
    }

    /// Diameter.
    #[inline]
    pub fn diameter(&self) -> f64 {
        2.0 * self.radius
    }
}

impl std::fmt::Display for Circle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, r={:.2})", self.center, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::approx_eq;

    #[test]
    fn containment_and_distances() {
        let c = Circle::new(Point2::new(0.0, 0.0), 5.0);
        assert!(c.contains(Point2::new(3.0, 4.0)));
        assert!(!c.contains(Point2::new(4.0, 4.0)));
        assert!(approx_eq(c.min_dist(Point2::new(8.0, 0.0)), 3.0));
        assert!(approx_eq(c.min_dist(Point2::new(1.0, 1.0)), 0.0));
        assert!(approx_eq(c.max_dist(Point2::new(8.0, 0.0)), 13.0));
    }

    #[test]
    fn bbox_is_tight() {
        let c = Circle::new(Point2::new(2.0, 3.0), 1.5);
        assert_eq!(c.bbox(), Rect2::from_bounds(0.5, 1.5, 3.5, 4.5));
    }

    #[test]
    fn rect_intersection() {
        let c = Circle::new(Point2::new(0.0, 0.0), 2.0);
        assert!(c.intersects_rect(&Rect2::from_bounds(1.0, 1.0, 5.0, 5.0)));
        assert!(!c.intersects_rect(&Rect2::from_bounds(3.0, 3.0, 5.0, 5.0)));
        // Corner case: corner exactly at distance r.
        let corner = Rect2::from_bounds(2.0, 0.0, 4.0, 1.0);
        assert!(c.intersects_rect(&corner));
    }

    #[test]
    fn negative_radius_clamped() {
        let c = Circle::new(Point2::new(0.0, 0.0), -1.0);
        assert_eq!(c.radius, 0.0);
        assert!(c.contains(Point2::new(0.0, 0.0)));
    }
}
