//! Planar and spatial points.

use std::ops::{Add, Mul, Sub};

/// A point in the horizontal plane of one floor, in metres.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point2 {
    /// East-west coordinate, metres.
    pub x: f64,
    /// North-south coordinate, metres.
    pub y: f64,
}

impl Point2 {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point2) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed).
    #[inline]
    pub fn dist_sq(self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// The midpoint of the segment from `self` to `other`.
    #[inline]
    pub fn midpoint(self, other: Point2) -> Point2 {
        Point2::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        Point2::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Lifts the planar point to 3D at elevation `z`.
    #[inline]
    pub fn at_z(self, z: f64) -> Point3 {
        Point3::new(self.x, self.y, z)
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn mul(self, s: f64) -> Point2 {
        Point2::new(self.x * s, self.y * s)
    }
}

impl std::fmt::Display for Point2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// A point in building space: a planar position plus an elevation.
///
/// Elevation is an absolute height in metres (floor index × floor height in
/// the synthetic buildings). The indR-tree stores 3D MBRs, so query points
/// carry their elevation for geometric lower bounds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point3 {
    /// East-west coordinate, metres.
    pub x: f64,
    /// North-south coordinate, metres.
    pub y: f64,
    /// Elevation, metres.
    pub z: f64,
}

impl Point3 {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// The planar projection of the point.
    #[inline]
    pub fn xy(self) -> Point2 {
        Point2::new(self.x, self.y)
    }

    /// Euclidean distance in 3D.
    #[inline]
    pub fn dist(self, other: Point3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }
}

impl std::fmt::Display for Point3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.2}, {:.2}, {:.2})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::approx_eq;

    #[test]
    fn planar_distance_is_pythagorean() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert!(approx_eq(a.dist(b), 5.0));
        assert!(approx_eq(a.dist_sq(b), 25.0));
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point2::new(1.5, -2.0);
        let b = Point2::new(-7.0, 0.25);
        assert!(approx_eq(a.dist(b), b.dist(a)));
        assert!(approx_eq(a.dist(a), 0.0));
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 6.0);
        assert_eq!(a.midpoint(b), a.lerp(b, 0.5));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn spatial_distance_includes_elevation() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(0.0, 3.0, 4.0);
        assert!(approx_eq(a.dist(b), 5.0));
    }

    #[test]
    fn vector_ops() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, 5.0);
        assert_eq!(a + b, Point2::new(4.0, 7.0));
        assert_eq!(b - a, Point2::new(2.0, 3.0));
        assert_eq!(a * 2.0, Point2::new(2.0, 4.0));
    }
}
