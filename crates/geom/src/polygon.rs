//! Simple polygons for irregular indoor partitions.
//!
//! Hallways and other non-rectangular partitions are modelled as simple
//! rectilinear polygons (axis-aligned edges). The paper approximates even
//! curved partitions by polygons before decomposition (§III-A.2), so this is
//! the general representation the index consumes.

use crate::fp::EPSILON;
use crate::point::Point2;
use crate::rect::Rect2;

/// A simple polygon given by its boundary vertices.
///
/// Vertices are stored in counter-clockwise order (the constructor reverses
/// clockwise input). Consecutive duplicate vertices are rejected.
#[derive(Clone, Debug, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point2>,
}

/// Errors from polygon construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than three vertices.
    TooFewVertices,
    /// Two consecutive vertices coincide.
    DuplicateVertex(usize),
    /// The polygon has (numerically) zero area.
    ZeroArea,
}

impl std::fmt::Display for PolygonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolygonError::TooFewVertices => write!(f, "polygon needs at least 3 vertices"),
            PolygonError::DuplicateVertex(i) => {
                write!(f, "consecutive duplicate vertex at index {i}")
            }
            PolygonError::ZeroArea => write!(f, "polygon has zero area"),
        }
    }
}

impl std::error::Error for PolygonError {}

impl Polygon {
    /// Builds a polygon from boundary vertices (either orientation).
    pub fn new(mut vertices: Vec<Point2>) -> Result<Self, PolygonError> {
        if vertices.len() < 3 {
            return Err(PolygonError::TooFewVertices);
        }
        for i in 0..vertices.len() {
            let j = (i + 1) % vertices.len();
            if vertices[i].dist_sq(vertices[j]) <= EPSILON * EPSILON {
                return Err(PolygonError::DuplicateVertex(i));
            }
        }
        let signed = signed_area(&vertices);
        if signed.abs() <= EPSILON {
            return Err(PolygonError::ZeroArea);
        }
        if signed < 0.0 {
            vertices.reverse();
        }
        Ok(Polygon { vertices })
    }

    /// A rectangle as a polygon.
    pub fn from_rect(r: Rect2) -> Self {
        Polygon {
            vertices: r.corners().to_vec(),
        }
    }

    /// Approximates a circle by a regular `n`-gon (used to polygonize round
    /// partitions before decomposition, per §III-A.2).
    pub fn from_circle(center: Point2, radius: f64, n: usize) -> Result<Self, PolygonError> {
        let n = n.max(3);
        let verts = (0..n)
            .map(|i| {
                let theta = 2.0 * std::f64::consts::PI * (i as f64) / (n as f64);
                Point2::new(
                    center.x + radius * theta.cos(),
                    center.y + radius * theta.sin(),
                )
            })
            .collect();
        Polygon::new(verts)
    }

    /// Boundary vertices in counter-clockwise order.
    #[inline]
    pub fn vertices(&self) -> &[Point2] {
        &self.vertices
    }

    /// Polygon area (positive).
    #[inline]
    pub fn area(&self) -> f64 {
        signed_area(&self.vertices)
    }

    /// Centroid of the polygon.
    pub fn centroid(&self) -> Point2 {
        let mut cx = 0.0;
        let mut cy = 0.0;
        let a = signed_area(&self.vertices);
        let n = self.vertices.len();
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let cross = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * cross;
            cy += (p.y + q.y) * cross;
        }
        Point2::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Tight axis-aligned bounding box.
    pub fn bbox(&self) -> Rect2 {
        let mut r = Rect2::empty_sentinel();
        for &v in &self.vertices {
            r = r.union(&Rect2::new(v, v));
        }
        r
    }

    /// Point-in-polygon test (boundary counts as inside) by ray casting.
    pub fn contains(&self, p: Point2) -> bool {
        let n = self.vertices.len();
        // Ray cast first: the common interior case needs no square roots.
        let mut inside = false;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if (a.y > p.y) != (b.y > p.y) {
                let x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
                if p.x < x_at {
                    inside = !inside;
                }
            }
        }
        if inside {
            return true;
        }
        // Ray casting is unreliable exactly on edges: points the cast calls
        // "outside" may still sit on the boundary, which counts as inside.
        for i in 0..n {
            let s = crate::segment::Segment::new(self.vertices[i], self.vertices[(i + 1) % n]);
            if s.dist(p) <= 1e-9 {
                return true;
            }
        }
        false
    }

    /// Returns `true` if every edge is horizontal or vertical.
    pub fn is_rectilinear(&self) -> bool {
        let n = self.vertices.len();
        (0..n).all(|i| {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            (a.x - b.x).abs() <= EPSILON || (a.y - b.y).abs() <= EPSILON
        })
    }

    /// Returns `true` if the polygon is convex.
    pub fn is_convex(&self) -> bool {
        self.reflex_vertices().is_empty()
    }

    /// Indices of the *turning points*: vertices whose internal angle
    /// exceeds 180° (the reflex vertices the decomposition cuts at,
    /// Algorithm 3 / §III-A.2).
    pub fn reflex_vertices(&self) -> Vec<usize> {
        let n = self.vertices.len();
        let mut out = Vec::new();
        for i in 0..n {
            let prev = self.vertices[(i + n - 1) % n];
            let cur = self.vertices[i];
            let next = self.vertices[(i + 1) % n];
            let cross = (cur.x - prev.x) * (next.y - cur.y) - (cur.y - prev.y) * (next.x - cur.x);
            // CCW orientation: negative cross product = right turn = reflex.
            if cross < -EPSILON {
                out.push(i);
            }
        }
        out
    }

    /// Returns `true` if the polygon is exactly an axis-aligned rectangle.
    pub fn as_rect(&self) -> Option<Rect2> {
        if self.vertices.len() != 4 || !self.is_rectilinear() {
            return None;
        }
        let bb = self.bbox();
        if (self.area() - bb.area()).abs() <= 1e-6 * bb.area().max(1.0) {
            Some(bb)
        } else {
            None
        }
    }

    /// Decomposes a *rectilinear* polygon into disjoint rectangles whose
    /// union is the polygon, by slicing it into horizontal slabs at every
    /// distinct vertex y-coordinate and merging vertically adjacent slices
    /// with identical x-extent.
    ///
    /// Returns `None` for non-rectilinear polygons (callers fall back to
    /// the bounding box, documented in `decompose`).
    pub fn rectangles(&self) -> Option<Vec<Rect2>> {
        if !self.is_rectilinear() {
            return None;
        }
        let mut ys: Vec<f64> = self.vertices.iter().map(|v| v.y).collect();
        ys.sort_by(f64::total_cmp);
        ys.dedup_by(|a, b| (*a - *b).abs() <= EPSILON);

        let n = self.vertices.len();
        let mut slab_rects: Vec<Rect2> = Vec::new();
        for w in ys.windows(2) {
            let (y0, y1) = (w[0], w[1]);
            let mid = (y0 + y1) / 2.0;
            // Vertical edges crossing this slab, recorded by x.
            let mut xs: Vec<f64> = Vec::new();
            for i in 0..n {
                let a = self.vertices[i];
                let b = self.vertices[(i + 1) % n];
                if (a.x - b.x).abs() <= EPSILON {
                    let (elo, ehi) = (a.y.min(b.y), a.y.max(b.y));
                    if elo <= mid && mid <= ehi {
                        xs.push(a.x);
                    }
                }
            }
            xs.sort_by(f64::total_cmp);
            // Interior alternates between consecutive crossings.
            let mut i = 0;
            while i + 1 < xs.len() {
                let (x0, x1) = (xs[i], xs[i + 1]);
                if x1 - x0 > EPSILON {
                    slab_rects.push(Rect2::from_bounds(x0, y0, x1, y1));
                }
                i += 2;
            }
        }

        // Merge vertically adjacent slices with the same x-extent.
        slab_rects.sort_by(|a, b| {
            a.lo.x
                .total_cmp(&b.lo.x)
                .then(a.hi.x.total_cmp(&b.hi.x))
                .then(a.lo.y.total_cmp(&b.lo.y))
        });
        let mut merged: Vec<Rect2> = Vec::new();
        for r in slab_rects {
            if let Some(last) = merged.last_mut() {
                if (last.lo.x - r.lo.x).abs() <= EPSILON
                    && (last.hi.x - r.hi.x).abs() <= EPSILON
                    && (last.hi.y - r.lo.y).abs() <= EPSILON
                {
                    last.hi.y = r.hi.y;
                    continue;
                }
            }
            merged.push(r);
        }
        Some(merged)
    }
}

fn signed_area(vertices: &[Point2]) -> f64 {
    let n = vertices.len();
    let mut acc = 0.0;
    for i in 0..n {
        let p = vertices[i];
        let q = vertices[(i + 1) % n];
        acc += p.x * q.y - q.x * p.y;
    }
    acc / 2.0
}

impl std::fmt::Display for Polygon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "polygon[{} vertices]", self.vertices.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An L-shaped rectilinear polygon (like hallway 10 in Fig. 8(b)).
    fn l_shape() -> Polygon {
        Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(10.0, 4.0),
            Point2::new(4.0, 4.0),
            Point2::new(4.0, 10.0),
            Point2::new(0.0, 10.0),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_degenerate_input() {
        assert_eq!(
            Polygon::new(vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)]),
            Err(PolygonError::TooFewVertices)
        );
        let collinear = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(2.0, 0.0),
        ];
        assert_eq!(Polygon::new(collinear), Err(PolygonError::ZeroArea));
    }

    #[test]
    fn orientation_is_normalized() {
        let cw = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.0, 1.0),
            Point2::new(1.0, 1.0),
            Point2::new(1.0, 0.0),
        ])
        .unwrap();
        assert!(cw.area() > 0.0);
    }

    #[test]
    fn l_shape_properties() {
        let p = l_shape();
        assert!((p.area() - (10.0 * 4.0 + 4.0 * 6.0)).abs() < 1e-9);
        assert!(p.is_rectilinear());
        assert!(!p.is_convex());
        // Exactly one reflex vertex, the inner corner (4,4).
        let reflex = p.reflex_vertices();
        assert_eq!(reflex.len(), 1);
        assert_eq!(p.vertices()[reflex[0]], Point2::new(4.0, 4.0));
    }

    #[test]
    fn containment() {
        let p = l_shape();
        assert!(p.contains(Point2::new(2.0, 2.0)));
        assert!(p.contains(Point2::new(8.0, 2.0)));
        assert!(p.contains(Point2::new(2.0, 8.0)));
        assert!(!p.contains(Point2::new(8.0, 8.0))); // notch
        assert!(p.contains(Point2::new(0.0, 0.0))); // boundary vertex
        assert!(p.contains(Point2::new(5.0, 0.0))); // boundary edge
    }

    #[test]
    fn rect_roundtrip() {
        let r = Rect2::from_bounds(1.0, 2.0, 5.0, 6.0);
        let p = Polygon::from_rect(r);
        assert_eq!(p.as_rect(), Some(r));
        assert!(l_shape().as_rect().is_none());
    }

    #[test]
    fn rectangles_cover_l_shape() {
        let p = l_shape();
        let rects = p.rectangles().unwrap();
        let total: f64 = rects.iter().map(|r| r.area()).sum();
        assert!((total - p.area()).abs() < 1e-9, "area preserved");
        // Pieces are pairwise disjoint.
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                assert!(rects[i].overlap_area(&rects[j]) < 1e-9);
            }
        }
        // Each piece lies inside the polygon.
        for r in &rects {
            assert!(p.contains(r.center()));
        }
    }

    #[test]
    fn rectangles_of_plain_rect_is_identity() {
        let r = Rect2::from_bounds(0.0, 0.0, 6.0, 3.0);
        let p = Polygon::from_rect(r);
        let rects = p.rectangles().unwrap();
        assert_eq!(rects.len(), 1);
        assert_eq!(rects[0], r);
    }

    #[test]
    fn circle_polygonization() {
        let p = Polygon::from_circle(Point2::new(0.0, 0.0), 10.0, 64).unwrap();
        assert!(!p.is_rectilinear());
        // Area of a regular 64-gon is close to the disk area.
        assert!((p.area() - std::f64::consts::PI * 100.0).abs() < 2.0);
        assert!(p.contains(Point2::new(0.0, 0.0)));
        assert!(p.rectangles().is_none());
    }

    #[test]
    fn centroid_of_rect_is_center() {
        let p = Polygon::from_rect(Rect2::from_bounds(0.0, 0.0, 4.0, 2.0));
        let c = p.centroid();
        assert!((c.x - 2.0).abs() < 1e-9 && (c.y - 1.0).abs() < 1e-9);
    }
}
