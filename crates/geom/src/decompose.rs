//! Irregular-partition decomposition into index units (Algorithm 3).
//!
//! Long, thin, or non-convex partitions cause dead space in tree nodes and
//! degrade query performance (§III-A.2). The paper decomposes such
//! partitions into *index units*: regions whose short-side/long-side ratio
//! is at least `T_shape`, cutting concave partitions at turning points
//! (reflex vertices) first.
//!
//! Our implementation follows the two criteria of Algorithm 3:
//!
//! 1. **Concavity cuts** — a non-convex rectilinear partition is sliced into
//!    rectangles at its reflex vertices ([`crate::Polygon::rectangles`]:
//!    slab decomposition followed by a merge pass, which realizes the
//!    paper's "prefer turning points closer to the middle" goal of producing
//!    large quadratic pieces).
//! 2. **Imbalance cuts** — each rectangle whose aspect ratio is below
//!    `T_shape` is split recursively at the midpoint of its longer
//!    dimension (lines 9–13 of Algorithm 3) until the ratio reaches the
//!    threshold, or no further midpoint halving can improve it (a halving
//!    improves the ratio iff `long > short·√2`; we stop at the optimum, so
//!    for `T_shape > ~0.94` units converge to the best achievable ratio
//!    instead of looping forever).
//!
//! Non-rectilinear partitions (e.g. polygonized circles) fall back to their
//! bounding rectangle before the imbalance cuts — a conservative choice that
//! only ever *over*-covers space, so index correctness (no false negatives)
//! is preserved.

use crate::polygon::Polygon;
use crate::rect::Rect2;

/// Parameters of the decomposition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecomposeConfig {
    /// Minimum acceptable short/long side ratio of an index unit
    /// (the paper's `T_shape`; its experiments use 0.5).
    pub t_shape: f64,
    /// Hard cap on produced units per partition, guarding against
    /// pathological thresholds. 256 is far above anything the paper's
    /// workloads produce.
    pub max_units: usize,
}

impl Default for DecomposeConfig {
    fn default() -> Self {
        DecomposeConfig {
            t_shape: 0.5,
            max_units: 256,
        }
    }
}

/// Decomposes a partition footprint into index units.
///
/// The result is non-empty, covers the polygon (exactly for rectilinear
/// input, conservatively via the bounding box otherwise), and every unit's
/// aspect ratio is `≥ min(t_shape, best achievable by midpoint halving)`.
pub fn decompose(footprint: &Polygon, config: &DecomposeConfig) -> Vec<Rect2> {
    let base = match footprint.rectangles() {
        Some(rects) if !rects.is_empty() => rects,
        _ => vec![footprint.bbox()],
    };
    let mut out = Vec::with_capacity(base.len());
    for r in base {
        split_to_shape(r, config, &mut out);
    }
    out
}

/// Decomposes a plain rectangle (fast path used for regular rooms).
pub fn decompose_rect(rect: Rect2, config: &DecomposeConfig) -> Vec<Rect2> {
    let mut out = Vec::new();
    split_to_shape(rect, config, &mut out);
    out
}

/// Iterative imbalance cut (Algorithm 3, lines 9–13).
///
/// Worklist form so the `max_units` cap is exact: once the finished units
/// plus the pending pieces reach the cap, every pending piece is emitted
/// unsplit.
fn split_to_shape(rect: Rect2, config: &DecomposeConfig, out: &mut Vec<Rect2>) {
    let mut stack = vec![rect];
    while let Some(r) = stack.pop() {
        if out.len() + stack.len() + 1 >= config.max_units {
            out.push(r);
            continue;
        }
        let (w, h) = (r.width(), r.height());
        let (short, long) = if w < h { (w, h) } else { (h, w) };
        let ratio = if long <= 0.0 { 1.0 } else { short / long };
        // A midpoint halving of the long side improves the ratio iff long/2
        // is still closer to `short` than `long` is, i.e. long > short·√2.
        let improvable = long > short * std::f64::consts::SQRT_2;
        if ratio >= config.t_shape || !improvable {
            out.push(r);
            continue;
        }
        let halves = if w >= h {
            r.split_at_x((r.lo.x + r.hi.x) / 2.0)
        } else {
            r.split_at_y((r.lo.y + r.hi.y) / 2.0)
        };
        match halves {
            Some((a, b)) => {
                stack.push(a);
                stack.push(b);
            }
            None => out.push(r), // numerically unsplittable sliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;

    fn cfg(t: f64) -> DecomposeConfig {
        DecomposeConfig {
            t_shape: t,
            ..DecomposeConfig::default()
        }
    }

    #[test]
    fn square_is_untouched() {
        let r = Rect2::from_bounds(0.0, 0.0, 10.0, 10.0);
        assert_eq!(decompose_rect(r, &cfg(0.5)), vec![r]);
    }

    #[test]
    fn hallway_splits_into_balanced_units() {
        // A 600 m × 10 m corridor, the paper's canonical imbalanced case.
        let r = Rect2::from_bounds(0.0, 0.0, 600.0, 10.0);
        let units = decompose_rect(r, &cfg(0.5));
        assert!(units.len() > 1);
        let total: f64 = units.iter().map(|u| u.area()).sum();
        assert!((total - r.area()).abs() < 1e-6);
        for u in &units {
            assert!(
                u.aspect_ratio() >= 0.5 - 1e-9,
                "unit {u} ratio {}",
                u.aspect_ratio()
            );
        }
    }

    #[test]
    fn vertical_strip_splits_along_y() {
        let r = Rect2::from_bounds(0.0, 0.0, 5.0, 80.0);
        let units = decompose_rect(r, &cfg(0.5));
        assert!(units.len() >= 8);
        for u in &units {
            assert!(u.aspect_ratio() >= 0.5 - 1e-9);
        }
    }

    #[test]
    fn l_shaped_hallway_units_cover_polygon() {
        let p = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(60.0, 0.0),
            Point2::new(60.0, 6.0),
            Point2::new(6.0, 6.0),
            Point2::new(6.0, 60.0),
            Point2::new(0.0, 60.0),
        ])
        .unwrap();
        let units = decompose(&p, &cfg(0.5));
        let total: f64 = units.iter().map(|u| u.area()).sum();
        assert!((total - p.area()).abs() < 1e-6, "area preserved exactly");
        for u in &units {
            assert!(u.aspect_ratio() >= 0.5 - 1e-9);
            assert!(p.contains(u.center()));
        }
        // Units are pairwise disjoint.
        for i in 0..units.len() {
            for j in (i + 1)..units.len() {
                assert!(units[i].overlap_area(&units[j]) < 1e-9);
            }
        }
    }

    #[test]
    fn non_rectilinear_falls_back_to_bbox() {
        let p = Polygon::from_circle(Point2::new(0.0, 0.0), 10.0, 32).unwrap();
        let units = decompose(&p, &DecomposeConfig::default());
        // bbox of the circle is a square: one unit.
        assert_eq!(units.len(), 1);
        assert!(units[0].contains_rect(&p.bbox()));
    }

    #[test]
    fn extreme_threshold_terminates() {
        // T_shape close to 1 cannot always be met; the recursion must stop
        // at the best achievable ratio rather than looping.
        let r = Rect2::from_bounds(0.0, 0.0, 420.0, 10.0);
        let units = decompose_rect(r, &cfg(0.95));
        assert!(!units.is_empty());
        let total: f64 = units.iter().map(|u| u.area()).sum();
        assert!((total - r.area()).abs() < 1e-6);
        for u in &units {
            // Midpoint halving guarantees at least 1/√2 ≈ 0.707 at the
            // stopping point.
            assert!(u.aspect_ratio() >= std::f64::consts::FRAC_1_SQRT_2 - 1e-9);
        }
    }

    #[test]
    fn unit_cap_is_respected() {
        let r = Rect2::from_bounds(0.0, 0.0, 1.0e6, 1.0);
        let config = DecomposeConfig {
            t_shape: 0.5,
            max_units: 16,
        };
        let units = decompose_rect(r, &config);
        assert!(units.len() <= 16);
        let total: f64 = units.iter().map(|u| u.area()).sum();
        assert!((total - r.area()).abs() / r.area() < 1e-9);
    }
}
