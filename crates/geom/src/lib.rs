//! Geometry substrate for indoor distance-aware query evaluation.
//!
//! This crate provides the Euclidean building blocks used by the indoor-space
//! model, the composite index and the distance machinery of the ICDE 2013
//! paper *Efficient Distance-Aware Query Evaluation on Indoor Moving Objects*
//! (Xie, Lu, Pedersen):
//!
//! * [`Point2`] / [`Point3`] — planar and spatial points;
//! * [`Rect2`] — axis-aligned rectangles with min/max point distances;
//! * [`Mbr3`] — the 3D minimum bounding rectangles of the indR-tree tier,
//!   including the paper's "1 cm vertical extent" trick (§III-A.2);
//! * [`Circle`] — circular uncertainty regions (§V-A);
//! * [`Polygon`] — simple rectilinear polygons for irregular partitions;
//! * [`decompose()`](decompose::decompose) — the irregular-partition decomposition of Algorithm 3,
//!   producing quadratic index units bounded by the `T_shape` threshold;
//! * [`bisector`] — additive-weighted bisectors (Table II) used by the
//!   single-partition multi-path distance case (§II-C.2).
//!
//! The crate has no dependencies and is deliberately `f64`-based: indoor
//! coordinates are metres and all distances the paper manipulates are
//! non-negative reals.

pub mod bisector;
pub mod circle;
pub mod decompose;
pub mod fp;
pub mod mbr;
pub mod point;
pub mod polygon;
pub mod rect;
pub mod segment;

pub use bisector::{BisectorShape, Side, WeightedBisector};
pub use circle::Circle;
pub use decompose::{decompose, decompose_rect, DecomposeConfig};
pub use fp::{approx_eq, OrdF64, EPSILON};
pub use mbr::Mbr3;
pub use point::{Point2, Point3};
pub use polygon::Polygon;
pub use rect::Rect2;
pub use segment::Segment;
