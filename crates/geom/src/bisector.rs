//! Additive-weighted bisectors (§II-C.2, Table II).
//!
//! In the single-partition multi-path case, the partition is divided by the
//! Additive Weighted Voronoi Diagram of its doors: door `d_i` carries the
//! weight `w_i = |q, d_i|_I`, and the bisector between doors `d_i`, `d_j` is
//!
//! ```text
//! b_ij = { p : |p, d_i|_E + w_i = |p, d_j|_E + w_j }
//! ```
//!
//! Depending on the weights the bisector is a straight line (equal weights),
//! one branch of a hyperbola with foci `d_i`, `d_j`, or *null* — one door
//! dominates the whole plane (Table II). If an uncertainty region lies on a
//! single side, all of its instances route through the same door, which is
//! what makes the single-path fast path (Eq. 3) applicable.

use crate::circle::Circle;
use crate::fp::EPSILON;
use crate::point::Point2;
use crate::rect::Rect2;

/// Which door wins a comparison through the weighted bisector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// `|p,d_i| + w_i < |p,d_j| + w_j`: door *i* gives the shorter route.
    I,
    /// Door *j* gives the shorter route.
    J,
    /// The point is on the bisector itself (either door works).
    On,
}

/// The geometric shape of the bisector (Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BisectorShape {
    /// Equal weights: the perpendicular bisector of the two foci.
    Line,
    /// Distinct weights with `|w_i − w_j| < |d_i, d_j|_E`: one hyperbola
    /// branch, curved around the cheaper door.
    Hyperbola,
    /// `w_j − w_i ≥ |d_i, d_j|_E`: door *i* dominates everywhere; the
    /// bisector does not exist.
    NullIDominates,
    /// Door *j* dominates everywhere.
    NullJDominates,
}

/// An additive-weighted bisector between two weighted sites (doors).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightedBisector {
    /// First door position.
    pub di: Point2,
    /// Accumulated weight of the first door (`|q, d_i|_I`).
    pub wi: f64,
    /// Second door position.
    pub dj: Point2,
    /// Accumulated weight of the second door.
    pub wj: f64,
}

impl WeightedBisector {
    /// Creates the bisector for two weighted doors.
    #[inline]
    pub fn new(di: Point2, wi: f64, dj: Point2, wj: f64) -> Self {
        WeightedBisector { di, wi, dj, wj }
    }

    /// The *signed clearance* `f(p) = (|p,d_i| + w_i) − (|p,d_j| + w_j)`.
    ///
    /// Negative means door *i* wins. `f` is 2-Lipschitz in `p`, which powers
    /// the conservative region tests below.
    #[inline]
    pub fn clearance(&self, p: Point2) -> f64 {
        (p.dist(self.di) + self.wi) - (p.dist(self.dj) + self.wj)
    }

    /// Which side of the bisector `p` falls on.
    pub fn side(&self, p: Point2) -> Side {
        let f = self.clearance(p);
        if f < -EPSILON {
            Side::I
        } else if f > EPSILON {
            Side::J
        } else {
            Side::On
        }
    }

    /// Classifies the bisector shape per Table II.
    pub fn shape(&self) -> BisectorShape {
        let d = self.di.dist(self.dj);
        let diff = self.wj - self.wi; // > 0 favours door i
        if diff.abs() <= EPSILON {
            BisectorShape::Line
        } else if diff >= d - EPSILON {
            // |p,di| − |p,dj| ≤ d < diff ⇒ f(p) < 0 everywhere.
            BisectorShape::NullIDominates
        } else if -diff >= d - EPSILON {
            BisectorShape::NullJDominates
        } else {
            BisectorShape::Hyperbola
        }
    }

    /// If the whole disk provably lies on one side, returns that side.
    ///
    /// Sound but conservative: uses the 2-Lipschitz bound
    /// `|f(p) − f(c)| ≤ 2·|p − c|`, so a disk with `|f(c)| > 2r` is on a
    /// single side. Callers fall back to per-instance tests when `None` is
    /// returned (the paper's "if the object intersects the bisector, check
    /// all its instances").
    pub fn circle_side(&self, c: &Circle) -> Option<Side> {
        match self.shape() {
            BisectorShape::NullIDominates => return Some(Side::I),
            BisectorShape::NullJDominates => return Some(Side::J),
            _ => {}
        }
        let f = self.clearance(c.center);
        if f < -2.0 * c.radius - EPSILON {
            Some(Side::I)
        } else if f > 2.0 * c.radius + EPSILON {
            Some(Side::J)
        } else {
            None
        }
    }

    /// If the whole rectangle provably lies on one side, returns that side.
    ///
    /// Uses the Lipschitz bound from the rectangle centre with the
    /// half-diagonal as radius.
    pub fn rect_side(&self, r: &Rect2) -> Option<Side> {
        let half_diag = r.lo.dist(r.hi) / 2.0;
        self.circle_side(&Circle::new(r.center(), half_diag))
    }

    /// Whether the bisector is null *within* the rectangle `p_rect`
    /// (Table II's partition-relative null condition): even a hyperbola can
    /// miss the partition entirely, in which case one door dominates inside
    /// it.
    pub fn null_within(&self, p_rect: &Rect2) -> Option<Side> {
        self.rect_side(p_rect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(wi: f64, wj: f64) -> WeightedBisector {
        WeightedBisector::new(Point2::new(-5.0, 0.0), wi, Point2::new(5.0, 0.0), wj)
    }

    // ---- Table II: the three shapes -------------------------------------

    #[test]
    fn table2_equal_weights_is_line() {
        assert_eq!(b(7.0, 7.0).shape(), BisectorShape::Line);
        // The perpendicular bisector of the foci: x = 0.
        assert_eq!(b(7.0, 7.0).side(Point2::new(0.0, 3.0)), Side::On);
        assert_eq!(b(7.0, 7.0).side(Point2::new(-1.0, 3.0)), Side::I);
        assert_eq!(b(7.0, 7.0).side(Point2::new(1.0, 3.0)), Side::J);
    }

    #[test]
    fn table2_moderate_weight_gap_is_hyperbola() {
        // |di,dj| = 10; weight gap 4 < 10 ⇒ hyperbola.
        let bi = b(3.0, 7.0);
        assert_eq!(bi.shape(), BisectorShape::Hyperbola);
        // The bisector crosses the focal axis where |p,di| − |p,dj| = 4:
        // at x = 2 on the segment (|p,di| = 7, |p,dj| = 3).
        assert_eq!(bi.side(Point2::new(2.0, 0.0)), Side::On);
        assert_eq!(bi.side(Point2::new(0.0, 0.0)), Side::I);
        assert_eq!(bi.side(Point2::new(4.0, 0.0)), Side::J);
    }

    #[test]
    fn table2_large_weight_gap_is_null() {
        // Weight gap ≥ focal distance: the cheap door dominates everywhere.
        assert_eq!(b(0.0, 10.0).shape(), BisectorShape::NullIDominates);
        assert_eq!(b(0.0, 25.0).shape(), BisectorShape::NullIDominates);
        assert_eq!(b(25.0, 0.0).shape(), BisectorShape::NullJDominates);
        // Everywhere: even right next to the expensive door.
        let bi = b(0.0, 25.0);
        assert_eq!(bi.side(Point2::new(5.0, 0.0)), Side::I);
    }

    // ---- Hyperbola geometry ---------------------------------------------

    #[test]
    fn hyperbola_points_satisfy_defining_equation() {
        let bi = b(3.0, 7.0);
        // Sample points where f = 0 along vertical lines: solve numerically.
        for y in [0.5, 2.0, 10.0] {
            // Bisect f(x, y) = 0 for x in [-5, 5].
            let (mut lo, mut hi) = (-5.0, 5.0);
            for _ in 0..80 {
                let mid = (lo + hi) / 2.0;
                if bi.clearance(Point2::new(mid, y)) < 0.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let p = Point2::new((lo + hi) / 2.0, y);
            // |p,di| + wi == |p,dj| + wj on the curve.
            assert!(
                (p.dist(bi.di) + bi.wi - (p.dist(bi.dj) + bi.wj)).abs() < 1e-9,
                "point {p} not on bisector"
            );
        }
    }

    // ---- Region side tests ----------------------------------------------

    #[test]
    fn circle_clearly_on_one_side() {
        let bi = b(0.0, 0.0); // bisector is x = 0
        let c = Circle::new(Point2::new(-20.0, 0.0), 3.0);
        assert_eq!(bi.circle_side(&c), Some(Side::I));
        let c = Circle::new(Point2::new(20.0, 0.0), 3.0);
        assert_eq!(bi.circle_side(&c), Some(Side::J));
    }

    #[test]
    fn circle_straddling_is_undecided() {
        let bi = b(0.0, 0.0);
        let c = Circle::new(Point2::new(0.5, 0.0), 3.0);
        assert_eq!(bi.circle_side(&c), None);
    }

    #[test]
    fn null_shape_decides_any_region() {
        let bi = b(0.0, 25.0);
        let c = Circle::new(Point2::new(4.9, 0.0), 100.0);
        assert_eq!(bi.circle_side(&c), Some(Side::I));
    }

    #[test]
    fn rect_side_matches_corner_evaluation() {
        // f is bounded by the focal distance (10 here), so the rectangle
        // must be small enough for the 2-Lipschitz bound to decide:
        // half-diagonal < |f(center)|/2 = 5.
        let bi = b(0.0, 0.0);
        let r = Rect2::from_bounds(-30.0, -1.0, -26.0, 1.0);
        assert_eq!(bi.rect_side(&r), Some(Side::I));
        for corner in r.corners() {
            assert_eq!(bi.side(corner), Side::I);
        }
        // A large faraway rectangle is undecided by the conservative test
        // even though all of it is on side I — that is the documented
        // fallback behaviour, not an error.
        let big = Rect2::from_bounds(-30.0, -2.0, -10.0, 2.0);
        assert_eq!(bi.rect_side(&big), None);
    }

    #[test]
    fn conservative_test_never_lies() {
        // Whenever circle_side says Some(side), every sampled point of the
        // disk must agree.
        let bi = b(2.0, 6.5);
        for cx in [-15.0, -6.0, -1.0, 2.0, 9.0, 18.0] {
            let c = Circle::new(Point2::new(cx, 1.0), 2.5);
            if let Some(side) = bi.circle_side(&c) {
                for i in 0..32 {
                    let theta = 2.0 * std::f64::consts::PI * (i as f64) / 32.0;
                    for rho in [0.0, 1.25, 2.5] {
                        let p = Point2::new(
                            c.center.x + rho * theta.cos(),
                            c.center.y + rho * theta.sin(),
                        );
                        let s = bi.side(p);
                        assert!(
                            s == side || s == Side::On,
                            "disk at {cx} claimed {side:?} but {p} is {s:?}"
                        );
                    }
                }
            }
        }
    }
}
