//! Line segments — used for walls, door placement validation and
//! point-to-boundary distances.

use crate::fp::EPSILON;
use crate::point::Point2;

/// A closed line segment between two endpoints.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Point2,
    /// Second endpoint.
    pub b: Point2,
}

impl Segment {
    /// Creates a segment.
    #[inline]
    pub const fn new(a: Point2, b: Point2) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Midpoint.
    #[inline]
    pub fn midpoint(&self) -> Point2 {
        self.a.midpoint(self.b)
    }

    /// The point of the segment closest to `p`.
    pub fn closest_point(&self, p: Point2) -> Point2 {
        let d = self.b - self.a;
        let len_sq = d.x * d.x + d.y * d.y;
        if len_sq <= EPSILON * EPSILON {
            return self.a;
        }
        let t = ((p.x - self.a.x) * d.x + (p.y - self.a.y) * d.y) / len_sq;
        self.a.lerp(self.b, t.clamp(0.0, 1.0))
    }

    /// Minimum distance from `p` to the segment.
    #[inline]
    pub fn dist(&self, p: Point2) -> f64 {
        p.dist(self.closest_point(p))
    }

    /// Returns `true` if `p` lies on the segment (within [`EPSILON`]).
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        self.dist(p) <= 1e-6
    }

    /// Returns `true` if the segment is axis-aligned (horizontal or
    /// vertical) — the case for walls of rectilinear partitions.
    #[inline]
    pub fn is_axis_aligned(&self) -> bool {
        (self.a.x - self.b.x).abs() <= EPSILON || (self.a.y - self.b.y).abs() <= EPSILON
    }
}

impl std::fmt::Display for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} — {}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::approx_eq;

    #[test]
    fn closest_point_projects_and_clamps() {
        let s = Segment::new(Point2::new(0.0, 0.0), Point2::new(10.0, 0.0));
        assert_eq!(
            s.closest_point(Point2::new(5.0, 3.0)),
            Point2::new(5.0, 0.0)
        );
        assert_eq!(
            s.closest_point(Point2::new(-4.0, 3.0)),
            Point2::new(0.0, 0.0)
        );
        assert_eq!(
            s.closest_point(Point2::new(14.0, 3.0)),
            Point2::new(10.0, 0.0)
        );
    }

    #[test]
    fn distance_examples() {
        let s = Segment::new(Point2::new(0.0, 0.0), Point2::new(10.0, 0.0));
        assert!(approx_eq(s.dist(Point2::new(5.0, 3.0)), 3.0));
        assert!(approx_eq(s.dist(Point2::new(13.0, 4.0)), 5.0));
    }

    #[test]
    fn degenerate_segment() {
        let s = Segment::new(Point2::new(1.0, 1.0), Point2::new(1.0, 1.0));
        assert!(approx_eq(s.length(), 0.0));
        assert!(approx_eq(s.dist(Point2::new(4.0, 5.0)), 5.0));
    }

    #[test]
    fn containment_and_alignment() {
        let s = Segment::new(Point2::new(0.0, 0.0), Point2::new(10.0, 0.0));
        assert!(s.contains(Point2::new(3.0, 0.0)));
        assert!(!s.contains(Point2::new(3.0, 0.5)));
        assert!(s.is_axis_aligned());
        assert!(!Segment::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)).is_axis_aligned());
    }
}
