//! 3D minimum bounding rectangles for the indR-tree tier.
//!
//! The paper (§III-A.2) stores partitions as *planar* rectangles positioned
//! in 3D: at tree-construction time every MBR gets a token vertical extent of
//! 1 cm so that R*-style volume-based heuristics do not degenerate, while at
//! query time the vertical extent is ignored (the partition is treated as a
//! 2D rectangle floating at its floor elevation). [`Mbr3`] encodes exactly
//! that behaviour: construction heuristics use [`Mbr3::build_volume`] /
//! [`Mbr3::build_margin`] (with the 1 cm pad), and distance computations use
//! the flattened z-interval.

use crate::point::{Point2, Point3};
use crate::rect::Rect2;

/// The token vertical extent (metres) given to planar MBRs at build time.
pub const VERTICAL_PAD: f64 = 0.01;

/// An axis-aligned box: a planar rectangle spanning an elevation interval.
///
/// For a leaf index unit the interval is degenerate (`z_lo == z_hi`, the
/// floor's elevation); internal nodes covering several floors have a real
/// interval. The floor *indices* covered are tracked separately as an
/// inclusive range `[floor_lo, floor_hi]` because the skeleton tier reasons
/// about floors, not raw elevations (Eq. 10 of the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mbr3 {
    /// Planar footprint.
    pub rect: Rect2,
    /// Lowest elevation covered, metres.
    pub z_lo: f64,
    /// Highest elevation covered, metres.
    pub z_hi: f64,
    /// Lowest floor index covered (inclusive).
    pub floor_lo: u16,
    /// Highest floor index covered (inclusive).
    pub floor_hi: u16,
}

impl Mbr3 {
    /// An MBR for a single-floor planar rectangle.
    #[inline]
    pub fn planar(rect: Rect2, floor: u16, elevation: f64) -> Self {
        Mbr3 {
            rect,
            z_lo: elevation,
            z_hi: elevation,
            floor_lo: floor,
            floor_hi: floor,
        }
    }

    /// An MBR spanning several floors (e.g. a staircase partition).
    #[inline]
    pub fn spanning(rect: Rect2, floors: (u16, u16), elevations: (f64, f64)) -> Self {
        debug_assert!(floors.0 <= floors.1);
        debug_assert!(elevations.0 <= elevations.1);
        Mbr3 {
            rect,
            z_lo: elevations.0,
            z_hi: elevations.1,
            floor_lo: floors.0,
            floor_hi: floors.1,
        }
    }

    /// Sentinel for running unions.
    pub fn empty_sentinel() -> Self {
        Mbr3 {
            rect: Rect2::empty_sentinel(),
            z_lo: f64::INFINITY,
            z_hi: f64::NEG_INFINITY,
            floor_lo: u16::MAX,
            floor_hi: 0,
        }
    }

    /// Smallest box covering both operands.
    pub fn union(&self, other: &Mbr3) -> Mbr3 {
        Mbr3 {
            rect: self.rect.union(&other.rect),
            z_lo: self.z_lo.min(other.z_lo),
            z_hi: self.z_hi.max(other.z_hi),
            floor_lo: self.floor_lo.min(other.floor_lo),
            floor_hi: self.floor_hi.max(other.floor_hi),
        }
    }

    /// Volume used by construction heuristics: the vertical side is padded
    /// by [`VERTICAL_PAD`] so planar boxes never have zero volume (§III-A.2).
    #[inline]
    pub fn build_volume(&self) -> f64 {
        self.rect.area() * (self.z_hi - self.z_lo + VERTICAL_PAD)
    }

    /// Surface-margin analogue used by R*-style split heuristics, with the
    /// same vertical pad.
    #[inline]
    pub fn build_margin(&self) -> f64 {
        let dz = self.z_hi - self.z_lo + VERTICAL_PAD;
        self.rect.width() + self.rect.height() + dz
    }

    /// Overlap volume with `other` under build-time padding.
    pub fn build_overlap(&self, other: &Mbr3) -> f64 {
        let planar = self.rect.overlap_area(&other.rect);
        if planar <= 0.0 {
            return 0.0;
        }
        let zlo = self.z_lo.max(other.z_lo);
        let zhi = (self.z_hi + VERTICAL_PAD).min(other.z_hi + VERTICAL_PAD);
        let dz = (zhi - zlo).max(0.0);
        planar * dz
    }

    /// Minimum Euclidean distance from the 3D query point to the box, with
    /// the query-phase rule that the vertical extent contributes only the
    /// true elevation interval (no pad): the partition is a 2D rectangle
    /// distributed in 3D space.
    #[inline]
    pub fn min_dist(&self, q: Point3) -> f64 {
        let planar = self.rect.min_dist(q.xy());
        let dz = (self.z_lo - q.z).max(0.0).max(q.z - self.z_hi);
        (planar * planar + dz * dz).sqrt()
    }

    /// Maximum Euclidean distance from the query point to the box.
    #[inline]
    pub fn max_dist(&self, q: Point3) -> f64 {
        let planar = self.rect.max_dist(q.xy());
        let dz = (q.z - self.z_lo).abs().max((q.z - self.z_hi).abs());
        (planar * planar + dz * dz).sqrt()
    }

    /// Returns `true` if floor `f` lies inside the covered floor interval —
    /// the `q.f ∈ [e.lf, e.uf]` test of Eq. 10.
    #[inline]
    pub fn covers_floor(&self, f: u16) -> bool {
        self.floor_lo <= f && f <= self.floor_hi
    }

    /// Returns `true` when the boxes share a point: planar footprints
    /// intersect and floor intervals overlap.
    #[inline]
    pub fn intersects(&self, other: &Mbr3) -> bool {
        self.rect.intersects(&other.rect)
            && self.floor_lo <= other.floor_hi
            && other.floor_lo <= self.floor_hi
    }

    /// Returns `true` if the planar footprint contains `p` and floor `f` is
    /// covered.
    #[inline]
    pub fn contains(&self, p: Point2, f: u16) -> bool {
        self.covers_floor(f) && self.rect.contains(p)
    }
}

impl std::fmt::Display for Mbr3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} z[{:.2},{:.2}] floors[{},{}]",
            self.rect, self.z_lo, self.z_hi, self.floor_lo, self.floor_hi
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::approx_eq;

    fn unit_at(floor: u16, z: f64) -> Mbr3 {
        Mbr3::planar(Rect2::from_bounds(0.0, 0.0, 10.0, 10.0), floor, z)
    }

    #[test]
    fn planar_box_has_padded_volume_but_flat_distance() {
        let m = unit_at(0, 0.0);
        assert!(approx_eq(m.build_volume(), 100.0 * VERTICAL_PAD));
        // Query directly above the box: distance is purely vertical and does
        // NOT include the 1 cm pad.
        let q = Point3::new(5.0, 5.0, 4.0);
        assert!(approx_eq(m.min_dist(q), 4.0));
    }

    #[test]
    fn union_extends_floors_and_elevations() {
        let a = unit_at(0, 0.0);
        let b = unit_at(3, 12.0);
        let u = a.union(&b);
        assert_eq!((u.floor_lo, u.floor_hi), (0, 3));
        assert!(approx_eq(u.z_lo, 0.0));
        assert!(approx_eq(u.z_hi, 12.0));
        assert!(u.covers_floor(2));
        assert!(!u.covers_floor(4));
    }

    #[test]
    fn min_dist_inside_is_zero() {
        let m = Mbr3::spanning(Rect2::from_bounds(0.0, 0.0, 10.0, 10.0), (0, 1), (0.0, 4.0));
        assert!(approx_eq(m.min_dist(Point3::new(5.0, 5.0, 2.0)), 0.0));
    }

    #[test]
    fn max_dist_dominates_min_dist() {
        let m = unit_at(1, 4.0);
        for q in [
            Point3::new(-5.0, 3.0, 0.0),
            Point3::new(5.0, 5.0, 4.0),
            Point3::new(20.0, 20.0, 30.0),
        ] {
            assert!(m.min_dist(q) <= m.max_dist(q) + 1e-12);
        }
    }

    #[test]
    fn build_overlap_planar_same_floor() {
        let a = unit_at(0, 0.0);
        let b = Mbr3::planar(Rect2::from_bounds(5.0, 5.0, 15.0, 15.0), 0, 0.0);
        // Same elevation: padded intervals fully overlap (dz = pad).
        assert!(approx_eq(a.build_overlap(&b), 25.0 * VERTICAL_PAD));
        let c = unit_at(1, 4.0);
        assert!(approx_eq(a.build_overlap(&c), 0.0));
    }

    #[test]
    fn sentinel_union_identity() {
        let e = Mbr3::empty_sentinel();
        let a = unit_at(2, 8.0);
        assert_eq!(e.union(&a), a);
    }
}
