//! The composite index (§III): all three layers plus `RangeSearch`
//! (Algorithm 4) and incremental maintenance (§III-C).
//!
//! Copy-on-write layout: every tier sits behind its own [`Arc`], so
//! cloning the index (the MVCC engine does this once per commit) is a
//! handful of pointer bumps, and a mutation deep-copies only the tiers it
//! touches. Object updates touch nothing but the [`ObjectLayer`] — which
//! is itself sharded by floor ([`crate::FloorShard`]) and `Arc`-per-bucket
//! — while topology updates degrade to copying the tree tier (unit store +
//! R-tree) and, for staircase-affecting events, rebuilding the skeleton
//! tier. See the README's "Architecture" section for the full sharding
//! invariant.

use crate::error::IndexError;
use crate::object_layer::ObjectLayer;
use crate::rtree::{LeafEntry, RTree, SearchStats};
use crate::skeleton::SkeletonTier;
use crate::units::{UnitId, UnitStore};
use idq_distance::DistanceCache;
use idq_geom::{DecomposeConfig, Mbr3, Rect2};
use idq_model::{DoorKind, DoorsGraph, IndoorPoint, IndoorSpace, PartitionId, TopologyEvent};
use idq_objects::{ObjectId, ObjectStore, UncertainObject};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the composite index.
#[derive(Clone, Copy, Debug)]
pub struct IndexConfig {
    /// indR-tree fanout (paper: 20).
    pub fanout: usize,
    /// Decomposition threshold `T_shape` (paper: 0.5).
    pub t_shape: f64,
    /// Bulk-load ("packed") construction vs incremental inserts.
    pub bulk_load: bool,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            fanout: 20,
            t_shape: 0.5,
            bulk_load: true,
        }
    }
}

/// Per-layer construction times (Fig. 15(b)).
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildStats {
    /// Tree tier: decomposition + packing, milliseconds.
    pub tree_ms: f64,
    /// Skeleton tier, milliseconds.
    pub skeleton_ms: f64,
    /// Topological layer (doors graph + links), milliseconds.
    pub topo_ms: f64,
    /// Object layer, milliseconds.
    pub object_ms: f64,
    /// Number of index units produced.
    pub units: usize,
}

/// Result of `RangeSearch` (Algorithm 4): candidate objects `Ro` and
/// candidate partitions `Rp`, with retrieval counters.
#[derive(Clone, Debug, Default)]
pub struct RangeSearchOutcome {
    /// Candidate objects (no false negatives, Lemma 6).
    pub objects: Vec<ObjectId>,
    /// Candidate partitions.
    pub partitions: Vec<PartitionId>,
    /// Tree traversal counters.
    pub stats: SearchStats,
    /// Bucket entries scanned.
    pub objects_checked: usize,
}

/// The three-layer composite index.
///
/// Cheap to clone: the object-independent tiers (unit store, R-tree,
/// skeleton, doors graph) are `Arc`-shared and only copied by the topology
/// operations that mutate them; the object layer shares per-floor o-table
/// shards and per-unit buckets. Object maintenance on a cloned index
/// therefore costs O(touched floor + changed buckets), not O(world).
#[derive(Clone, Debug)]
pub struct CompositeIndex {
    config: IndexConfig,
    units: Arc<UnitStore>,
    rtree: Arc<RTree>,
    skeleton: Arc<SkeletonTier>,
    graph: Arc<DoorsGraph>,
    /// Shared memo of per-door Dijkstra rows, valid exactly as long as the
    /// geometry tiers above it: every topology event retires the whole
    /// `Arc` (see [`CompositeIndex::apply_topology_deferred`]), so holding
    /// this cache through an index is proof its rows match the graph —
    /// pointer identity is validity, no epoch checks on the read path.
    distance_cache: Arc<DistanceCache>,
    objects: ObjectLayer,
    space_version: u64,
    /// Construction timing, for the Fig. 15(b) experiment.
    pub build_stats: BuildStats,
}

impl CompositeIndex {
    /// Builds the index over the space and the current object population.
    pub fn build(
        space: &IndoorSpace,
        store: &ObjectStore,
        config: IndexConfig,
    ) -> Result<Self, IndexError> {
        let mut stats = BuildStats::default();
        let decomp = DecomposeConfig {
            t_shape: config.t_shape,
            ..DecomposeConfig::default()
        };

        // Tree tier.
        let t = Instant::now();
        let mut units = UnitStore::new();
        let partitions: Vec<_> = space.partitions().cloned().collect();
        for p in &partitions {
            units.add_partition(space, p, &decomp);
        }
        let entries: Vec<LeafEntry> = units
            .iter()
            .map(|u| LeafEntry {
                unit: u.id,
                mbr: u.mbr,
            })
            .collect();
        stats.units = entries.len();
        let rtree = if config.bulk_load {
            RTree::bulk_load(entries, config.fanout)
        } else {
            let mut t = RTree::new(config.fanout);
            for e in entries {
                t.insert(e);
            }
            t
        };
        stats.tree_ms = t.elapsed().as_secs_f64() * 1e3;

        // Skeleton tier.
        let t = Instant::now();
        let skeleton = SkeletonTier::build(space);
        stats.skeleton_ms = t.elapsed().as_secs_f64() * 1e3;

        // Topological layer.
        let t = Instant::now();
        let graph = DoorsGraph::build(space);
        stats.topo_ms = t.elapsed().as_secs_f64() * 1e3;

        // Object layer.
        let t = Instant::now();
        let mut index = CompositeIndex {
            config,
            units: Arc::new(units),
            rtree: Arc::new(rtree),
            skeleton: Arc::new(skeleton),
            graph: Arc::new(graph),
            distance_cache: Arc::new(DistanceCache::new()),
            objects: ObjectLayer::new(),
            space_version: space.version(),
            build_stats: stats,
        };
        for id in store.ids_sorted() {
            index.insert_object(space, store.get(id)?)?;
        }
        index.build_stats.object_ms = t.elapsed().as_secs_f64() * 1e3;
        Ok(index)
    }

    // ---- accessors -----------------------------------------------------------

    /// The topological layer: the doors graph integrated in the index.
    pub fn doors_graph(&self) -> &DoorsGraph {
        &self.graph
    }

    /// The skeleton tier.
    pub fn skeleton(&self) -> &SkeletonTier {
        &self.skeleton
    }

    /// The unit store (h-table).
    pub fn units(&self) -> &UnitStore {
        &self.units
    }

    /// The object layer (buckets + o-table).
    pub fn object_layer(&self) -> &ObjectLayer {
        &self.objects
    }

    /// The tree tier.
    pub fn rtree(&self) -> &RTree {
        &self.rtree
    }

    /// The shared distance cache that travels with this index's geometry.
    /// Any two index versions for which [`Self::shares_geometry_with`]
    /// holds also share this cache (object-only commits clone the `Arc`);
    /// a topology commit retires it wholesale, so rows read through this
    /// accessor are always consistent with [`Self::doors_graph`].
    pub fn distance_cache(&self) -> &Arc<DistanceCache> {
        &self.distance_cache
    }

    /// Whether `self` and `other` share **all** object-independent tiers
    /// (unit store, R-tree, skeleton, doors graph) structurally — true for
    /// any two index versions related by commits that contained no
    /// topology update. Tests use this to pin down the degradation
    /// contract: only topology commits copy the geometry.
    pub fn shares_geometry_with(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.units, &other.units)
            && Arc::ptr_eq(&self.rtree, &other.rtree)
            && Arc::ptr_eq(&self.skeleton, &other.skeleton)
            && Arc::ptr_eq(&self.graph, &other.graph)
    }

    /// The index configuration.
    pub fn config(&self) -> IndexConfig {
        self.config
    }

    /// Errors if the index has not seen all space mutations.
    pub fn check_fresh(&self, space: &IndoorSpace) -> Result<(), IndexError> {
        if self.space_version != space.version() {
            return Err(IndexError::StaleIndex {
                index_version: self.space_version,
                space_version: space.version(),
            });
        }
        Ok(())
    }

    /// Minimum skeleton distance from `q` to an MBR (Eq. 10) — the
    /// geometric lower bound used by `RangeSearch`.
    pub fn min_skeleton_distance(&self, space: &IndoorSpace, q: IndoorPoint, mbr: &Mbr3) -> f64 {
        self.skeleton
            .min_skeleton_distance(q, space.floor_height(), mbr)
    }

    // ---- RangeSearch (Algorithm 4) --------------------------------------------

    /// Retrieves all objects and partitions whose geometric lower-bound
    /// distance from `q` is at most `r`. With `use_skeleton = false` the
    /// plain 3D Euclidean lower bound is used instead (the paper's
    /// "withoutSkeleton" ablation, Fig. 15(a)).
    pub fn range_search(
        &self,
        space: &IndoorSpace,
        q: IndoorPoint,
        r: f64,
        use_skeleton: bool,
    ) -> RangeSearchOutcome {
        self.range_search_dual(space, q, r, r, use_skeleton)
    }

    /// `RangeSearch` with separate radii: objects are collected within
    /// `r_objects` while partitions are collected within `r_partitions ≥
    /// r_objects`. The wider partition radius is the *subgraph slack*: it
    /// guarantees the restricted Dijkstra of Phase 2 sees every partition a
    /// relevant shortest path can traverse (see the soundness note in
    /// `idq_distance::bounds`).
    pub fn range_search_dual(
        &self,
        space: &IndoorSpace,
        q: IndoorPoint,
        r_objects: f64,
        r_partitions: f64,
        use_skeleton: bool,
    ) -> RangeSearchOutcome {
        let r_partitions = r_partitions.max(r_objects);
        let fh = space.floor_height();
        let q3 = q.at_elevation(fh);
        // One scratch for the whole retrieval: the skeleton metric's
        // entrance double loop factors per target floor, and floors
        // whose best skeleton route already exceeds `r_partitions` are
        // rejected in O(1) (`min_skeleton_distance_pruned` guarantees
        // every comparison against thresholds ≤ the screen — here both
        // `r_partitions` and `r_objects` — decides exactly as the exact
        // Eq. 10 metric would).
        let scratch = std::cell::RefCell::new(self.skeleton.scratch(q));
        let metric = |m: &Mbr3| -> f64 {
            if use_skeleton {
                self.skeleton.min_skeleton_distance_pruned(
                    &mut scratch.borrow_mut(),
                    m,
                    r_partitions,
                )
            } else {
                m.min_dist(q3)
            }
        };
        let mut partitions: HashSet<PartitionId> = HashSet::new();
        let mut object_set: HashSet<ObjectId> = HashSet::new();
        let mut objects = Vec::new();
        let mut objects_checked = 0usize;
        let stats = self.rtree.range_search(
            |m| metric(m),
            r_partitions,
            |entry| {
                if let Some(p) = self.units.partition_of(entry.unit) {
                    partitions.insert(p);
                }
                for &o in self.objects.objects_in(entry.unit) {
                    objects_checked += 1;
                    if object_set.contains(&o) {
                        continue;
                    }
                    let Ok(mbr) = self.objects.object_mbr(o) else {
                        continue;
                    };
                    if metric(&mbr) <= r_objects {
                        object_set.insert(o);
                        objects.push(o);
                    }
                }
            },
        );
        let mut partitions: Vec<PartitionId> = partitions.into_iter().collect();
        partitions.sort_unstable();
        objects.sort_unstable();
        RangeSearchOutcome {
            objects,
            partitions,
            stats,
            objects_checked,
        }
    }

    // ---- object layer maintenance (§III-C.2) ------------------------------------

    /// Units overlapped by an object's uncertainty footprint, plus its
    /// search MBR (region ∪ instances).
    pub fn object_footprint(
        &self,
        space: &IndoorSpace,
        object: &UncertainObject,
    ) -> (Vec<UnitId>, Mbr3) {
        let rect: Rect2 = object.footprint_rect();
        let mbr = Mbr3::planar(rect, object.floor, space.elevation(object.floor));
        let mut found = Vec::new();
        self.rtree.range_search(
            |m| if m.intersects(&mbr) { 0.0 } else { 1.0 },
            0.5,
            |entry| found.push(entry.unit),
        );
        found.sort_unstable();
        (found, mbr)
    }

    /// Unit footprints for a *group* of write MBRs computed with **one**
    /// tree traversal: the traversal collects every unit intersecting the
    /// union of the MBRs, then slot `i` keeps the candidates `mbrs[i]`
    /// intersects. Each slot is exactly what a per-MBR traversal would
    /// return — the grouping only amortizes the tree descent, which is why
    /// batch appliers group position updates by touched partition before
    /// calling this (a scattered group degrades to one wide traversal).
    pub fn unit_footprints_grouped(&self, mbrs: &[Mbr3]) -> Vec<Vec<UnitId>> {
        let sorted = |mut units: Vec<UnitId>| {
            units.sort_unstable();
            units
        };
        if mbrs.len() <= 1 {
            return mbrs
                .iter()
                .map(|mbr| {
                    let mut units = Vec::new();
                    self.rtree.range_search(
                        |m| if m.intersects(mbr) { 0.0 } else { 1.0 },
                        0.5,
                        |entry| units.push(entry.unit),
                    );
                    sorted(units)
                })
                .collect();
        }
        let union = mbrs
            .iter()
            .fold(Mbr3::empty_sentinel(), |acc, m| acc.union(m));
        let mut candidates: Vec<LeafEntry> = Vec::new();
        self.rtree.range_search(
            |m| if m.intersects(&union) { 0.0 } else { 1.0 },
            0.5,
            |entry| candidates.push(*entry),
        );
        mbrs.iter()
            .map(|mbr| {
                sorted(
                    candidates
                        .iter()
                        .filter(|e| e.mbr.intersects(mbr))
                        .map(|e| e.unit)
                        .collect(),
                )
            })
            .collect()
    }

    /// Indexes a new object.
    pub fn insert_object(
        &mut self,
        space: &IndoorSpace,
        object: &UncertainObject,
    ) -> Result<(), IndexError> {
        let (units, mbr) = self.object_footprint(space, object);
        self.insert_object_prepared(object.id, units, mbr)
    }

    /// Indexes a new object from a footprint prepared by
    /// [`CompositeIndex::object_footprint`] /
    /// [`CompositeIndex::unit_footprints_grouped`]. The footprint must
    /// have been computed against the current unit population (no topology
    /// change in between).
    pub fn insert_object_prepared(
        &mut self,
        id: ObjectId,
        units: Vec<UnitId>,
        mbr: Mbr3,
    ) -> Result<(), IndexError> {
        self.objects.insert(id, units, mbr)
    }

    /// Removes an object from the index.
    pub fn remove_object(&mut self, id: ObjectId) -> Result<(), IndexError> {
        self.objects.remove(id).map(|_| ())
    }

    /// Object update = deletion followed by insertion (§III-C.2); the
    /// object layer edits only the buckets whose membership changes.
    pub fn update_object(
        &mut self,
        space: &IndoorSpace,
        object: &UncertainObject,
    ) -> Result<(), IndexError> {
        let (units, mbr) = self.object_footprint(space, object);
        self.update_object_prepared(object.id, units, mbr)
    }

    /// Object update from a prepared footprint (see
    /// [`CompositeIndex::insert_object_prepared`] for the freshness
    /// contract).
    pub fn update_object_prepared(
        &mut self,
        id: ObjectId,
        units: Vec<UnitId>,
        mbr: Mbr3,
    ) -> Result<(), IndexError> {
        self.objects.update(id, units, mbr)
    }

    // ---- topology maintenance (§III-C.1) ------------------------------------------

    /// Applies one topology event to every affected layer. `store` supplies
    /// object geometry for re-bucketing objects displaced by partition
    /// changes.
    pub fn apply_topology(
        &mut self,
        space: &IndoorSpace,
        store: &ObjectStore,
        event: &TopologyEvent,
    ) -> Result<(), IndexError> {
        if self.apply_topology_deferred(space, store, event)? {
            self.rebuild_skeleton(space);
        }
        Ok(())
    }

    /// Like [`CompositeIndex::apply_topology`], but *defers* the skeleton
    /// rebuild: the return value says whether the event invalidated the
    /// skeleton tier, and the caller must call
    /// [`CompositeIndex::rebuild_skeleton`] once all deferred events are in.
    /// Batch appliers use this to coalesce a run of staircase-affecting
    /// events into a single rebuild at commit; the final skeleton is
    /// identical because a rebuild only reads the (already fully mutated)
    /// space. Queries must not run between a deferred `true` and the
    /// rebuild.
    pub fn apply_topology_deferred(
        &mut self,
        space: &IndoorSpace,
        store: &ObjectStore,
        event: &TopologyEvent,
    ) -> Result<bool, IndexError> {
        let mut skeleton_dirty = false;
        match event {
            TopologyEvent::PartitionInserted(p) => {
                skeleton_dirty |= self.index_partition(space, *p)?;
            }
            TopologyEvent::PartitionRemoved(p) => {
                self.unindex_partition(space, store, *p)?;
            }
            TopologyEvent::PartitionSplit { old, new } => {
                self.unindex_partition(space, store, *old)?;
                for p in new {
                    skeleton_dirty |= self.index_partition(space, *p)?;
                }
                // Objects previously bucketed in the old partition's units
                // were re-footprinted by unindex_partition, which ran before
                // the new units existed — re-run them now.
                self.refresh_objects_near(space, store, *old)?;
            }
            TopologyEvent::PartitionsMerged { old, new } => {
                for p in old {
                    self.unindex_partition(space, store, *p)?;
                }
                skeleton_dirty |= self.index_partition(space, *new)?;
                for p in old {
                    self.refresh_objects_near(space, store, *p)?;
                }
            }
            TopologyEvent::DoorInserted(d)
            | TopologyEvent::DoorRemoved(d)
            | TopologyEvent::DoorStateChanged(d)
            | TopologyEvent::DoorRetargeted(d) => {
                if let Ok(door) = space.door_raw(*d) {
                    if door.kind == DoorKind::StaircaseEntrance {
                        skeleton_dirty = true;
                    }
                }
            }
        }
        Arc::make_mut(&mut self.graph).apply(space, event);
        // Geometry changed: retire the distance cache wholesale. Older
        // index versions keep their own Arc (still valid for *their*
        // graph); this version starts cold. Done unconditionally here —
        // both topology entry points funnel through this method — so the
        // pointer-identity validity invariant needs no epoch bookkeeping.
        self.distance_cache = Arc::new(DistanceCache::new());
        self.space_version = space.version();
        Ok(skeleton_dirty)
    }

    /// Rebuilds the skeleton tier from the current space — the repair a
    /// deferred topology pass owes after any event returned `true`. The
    /// new tier replaces the shared one wholesale (older index versions
    /// keep theirs).
    pub fn rebuild_skeleton(&mut self, space: &IndoorSpace) {
        self.skeleton = Arc::new(SkeletonTier::build(space));
    }

    /// Indexes a partition's units into the tree tier, growing the object
    /// layer; returns whether the skeleton tier was invalidated (staircase
    /// partitions feed it).
    fn index_partition(&mut self, space: &IndoorSpace, p: PartitionId) -> Result<bool, IndexError> {
        let partition = space.partition(p)?;
        let decomp = DecomposeConfig {
            t_shape: self.config.t_shape,
            ..DecomposeConfig::default()
        };
        let ids = Arc::make_mut(&mut self.units).add_partition(space, partition, &decomp);
        for u in ids {
            let mbr = self.units.get(u).expect("freshly added").mbr;
            Arc::make_mut(&mut self.rtree).insert(LeafEntry { unit: u, mbr });
        }
        self.objects.grow(self.units.slots());
        Ok(partition.kind == idq_model::PartitionKind::Staircase)
    }

    fn unindex_partition(
        &mut self,
        space: &IndoorSpace,
        store: &ObjectStore,
        p: PartitionId,
    ) -> Result<(), IndexError> {
        // Collect objects bucketed in the removed units before tearing
        // them down.
        let removed_units = self.units.units_of(p).to_vec();
        let displaced = self.objects.objects_in_units(removed_units.iter());
        for u in &removed_units {
            if let Some(unit) = self.units.get(*u) {
                let mbr = unit.mbr;
                Arc::make_mut(&mut self.rtree).remove(*u, &mbr);
            }
        }
        Arc::make_mut(&mut self.units).remove_partition(p);
        // Re-footprint displaced objects against the remaining units.
        for id in displaced {
            if let Ok(obj) = store.get(id) {
                self.objects.remove(id)?;
                self.insert_object(space, obj)?;
            } else {
                // The object is gone from the store too: drop it.
                let _ = self.objects.remove(id);
            }
        }
        Ok(())
    }

    /// Re-footprints objects whose stored MBR intersects the bbox of a
    /// (former) partition — used after split/merge so objects land in the
    /// successor units.
    fn refresh_objects_near(
        &mut self,
        space: &IndoorSpace,
        store: &ObjectStore,
        former: PartitionId,
    ) -> Result<(), IndexError> {
        let Ok(partition) = space.partition_raw(former) else {
            return Ok(());
        };
        let area = Mbr3::spanning(
            partition.bbox,
            (partition.floor_lo, partition.floor_hi),
            (
                space.elevation(partition.floor_lo),
                space.elevation(partition.floor_hi),
            ),
        );
        let ids: Vec<ObjectId> = store
            .iter()
            .filter(|o| {
                self.objects
                    .object_mbr(o.id)
                    .map(|m| m.intersects(&area))
                    .unwrap_or(false)
            })
            .map(|o| o.id)
            .collect();
        for id in ids {
            let obj = store.get(id)?;
            self.objects.remove(id)?;
            self.insert_object(space, obj)?;
        }
        Ok(())
    }

    /// Test/maintenance helper: validates cross-layer invariants.
    pub fn validate(&self) {
        self.rtree.validate();
        self.objects.validate();
        assert_eq!(
            self.rtree.len(),
            self.units.len(),
            "tree entries == active units"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::{Circle, Point2};
    use idq_model::{FloorPlanBuilder, SplitLine};
    use idq_objects::UncertainObject;

    /// Two floors, two rooms each, one staircase; a handful of objects.
    fn setup() -> (IndoorSpace, ObjectStore, CompositeIndex) {
        let mut b = FloorPlanBuilder::new(4.0);
        let r00 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r01 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 40.0, 10.0))
            .unwrap();
        let r10 = b
            .add_room(1, Rect2::from_bounds(0.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r11 = b
            .add_room(1, Rect2::from_bounds(20.0, 0.0, 40.0, 10.0))
            .unwrap();
        let st = b
            .add_staircase((0, 1), Rect2::from_bounds(40.0, 0.0, 44.0, 10.0))
            .unwrap();
        b.add_door_between(r00, r01, Point2::new(20.0, 5.0))
            .unwrap();
        b.add_door_between(r10, r11, Point2::new(20.0, 5.0))
            .unwrap();
        b.add_staircase_entrance(st, r01, 0, Point2::new(40.0, 5.0))
            .unwrap();
        b.add_staircase_entrance(st, r11, 1, Point2::new(40.0, 5.0))
            .unwrap();
        let space = b.finish().unwrap();

        let mut store = ObjectStore::new();
        let mk = |id: u64, x: f64, floor: u16| {
            UncertainObject::with_uniform_weights(
                ObjectId(id),
                Circle::new(Point2::new(x, 5.0), 2.0),
                floor,
                vec![Point2::new(x - 1.0, 5.0), Point2::new(x + 1.0, 5.0)],
            )
            .unwrap()
        };
        store.insert(mk(1, 5.0, 0)).unwrap();
        store.insert(mk(2, 30.0, 0)).unwrap();
        store.insert(mk(3, 5.0, 1)).unwrap();
        let index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
        (space, store, index)
    }

    #[test]
    fn build_populates_all_layers() {
        let (space, store, index) = setup();
        index.validate();
        index.check_fresh(&space).unwrap();
        assert_eq!(index.object_layer().len(), store.len());
        assert!(index.build_stats.units >= space.partition_count());
        assert!(index.skeleton().entrance_count() == 2);
        assert!(index.doors_graph().edge_count() > 0);
    }

    #[test]
    fn range_search_same_floor_finds_near_object() {
        let (space, _, index) = setup();
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        let out = index.range_search(&space, q, 10.0, true);
        assert!(out.objects.contains(&ObjectId(1)));
        // Object 3 sits directly overhead: planar distance ~0 but the
        // skeleton route is ~ 35+8+35 — it must be pruned...
        assert!(
            !out.objects.contains(&ObjectId(3)),
            "skeleton prunes the floor above"
        );
        // ...whereas without the skeleton the Euclidean bound (4 m up)
        // admits it (Fig. 15(a)'s effect).
        let out = index.range_search(&space, q, 10.0, false);
        assert!(out.objects.contains(&ObjectId(3)));
    }

    #[test]
    fn range_search_partitions_no_false_negatives() {
        let (space, _, index) = setup();
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        let out = index.range_search(&space, q, 100.0, true);
        // Everything is within 100 m of indoor distance in this tiny
        // space: all partitions and objects retrieved.
        assert_eq!(out.partitions.len(), space.partition_count());
        assert_eq!(out.objects.len(), 3);
    }

    #[test]
    fn object_updates_maintain_layers() {
        let (space, mut store, mut index) = setup();
        // Move object 1 to the other room: delete + insert (§III-C.2).
        let moved = UncertainObject::with_uniform_weights(
            ObjectId(1),
            Circle::new(Point2::new(30.0, 5.0), 2.0),
            0,
            vec![Point2::new(29.0, 5.0), Point2::new(31.0, 5.0)],
        )
        .unwrap();
        store.remove(ObjectId(1)).unwrap();
        store.insert(moved.clone()).unwrap();
        index.update_object(&space, &moved).unwrap();
        index.validate();
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        let out = index.range_search(&space, q, 10.0, true);
        assert!(!out.objects.contains(&ObjectId(1)));
        let out = index.range_search(&space, q, 40.0, true);
        assert!(out.objects.contains(&ObjectId(1)));
        // Remove entirely.
        index.remove_object(ObjectId(1)).unwrap();
        assert!(!index.object_layer().contains(ObjectId(1)));
        assert!(matches!(
            index.remove_object(ObjectId(1)),
            Err(IndexError::ObjectNotIndexed(_))
        ));
    }

    #[test]
    fn grouped_footprints_match_individual() {
        let (space, store, index) = setup();
        let objects: Vec<&UncertainObject> = store
            .ids_sorted()
            .iter()
            .map(|&id| store.get(id).unwrap())
            .collect();
        let mbrs: Vec<Mbr3> = objects
            .iter()
            .map(|o| Mbr3::planar(o.footprint_rect(), o.floor, space.elevation(o.floor)))
            .collect();
        let grouped = index.unit_footprints_grouped(&mbrs);
        assert_eq!(grouped.len(), objects.len());
        for (obj, units) in objects.iter().zip(&grouped) {
            let (iu, _) = index.object_footprint(&space, obj);
            assert_eq!(units, &iu, "units for {}", obj.id);
        }
        // Prepared application lands in the same layer state as the
        // individual path.
        let mut a = index.clone();
        let mut b = index.clone();
        for obj in &objects {
            a.update_object(&space, obj).unwrap();
        }
        for ((obj, units), mbr) in objects.iter().zip(grouped).zip(mbrs) {
            b.update_object_prepared(obj.id, units, mbr).unwrap();
        }
        a.validate();
        b.validate();
        for obj in &objects {
            assert_eq!(
                a.object_layer().units_of(obj.id).unwrap(),
                b.object_layer().units_of(obj.id).unwrap()
            );
        }
    }

    #[test]
    fn topology_split_rebuckets_objects() {
        let (mut space, store, mut index) = setup();
        // Split room r00 (objects 1 lives there).
        let r00 = space
            .partition_at(IndoorPoint::new(Point2::new(5.0, 5.0), 0))
            .unwrap();
        let (_, events) = space
            .split_partition(r00, SplitLine::AtX(10.0), Some(Point2::new(10.0, 5.0)))
            .unwrap();
        for ev in &events {
            index.apply_topology(&space, &store, ev).unwrap();
        }
        index.check_fresh(&space).unwrap();
        index.validate();
        // Object 1 straddles x=5±1: all in the left half; still findable.
        let q = IndoorPoint::new(Point2::new(1.0, 5.0), 0);
        let out = index.range_search(&space, q, 10.0, true);
        assert!(out.objects.contains(&ObjectId(1)));
    }

    #[test]
    fn topology_delete_partition_drops_units() {
        let (mut space, store, mut index) = setup();
        let r11 = space
            .partition_at(IndoorPoint::new(Point2::new(30.0, 5.0), 1))
            .unwrap();
        let events = space.delete_partition(r11).unwrap();
        for ev in &events {
            index.apply_topology(&space, &store, ev).unwrap();
        }
        index.validate();
        assert!(index.units().units_of(r11).is_empty());
        // Units gone from the tree: a broad search sees fewer partitions.
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        let out = index.range_search(&space, q, 1000.0, false);
        assert!(!out.partitions.contains(&r11));
    }

    #[test]
    fn closing_staircase_entrance_rebuilds_skeleton() {
        let (mut space, store, mut index) = setup();
        assert_eq!(index.skeleton().entrance_count(), 2);
        // Close the floor-1 staircase entrance: the skeleton must drop it,
        // making floor 1 unreachable through the skeleton metric.
        let entrance = space
            .doors()
            .find(|d| d.kind == idq_model::DoorKind::StaircaseEntrance && d.floor == 1)
            .unwrap()
            .id;
        let ev = space.close_door(entrance).unwrap();
        index.apply_topology(&space, &store, &ev).unwrap();
        assert_eq!(index.skeleton().entrance_count(), 1);
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        let up = IndoorPoint::new(Point2::new(5.0, 5.0), 1);
        assert!(index.skeleton().skeleton_distance(q, up).is_infinite());
        // Re-opening restores it.
        let ev = space.open_door(entrance).unwrap();
        index.apply_topology(&space, &store, &ev).unwrap();
        assert_eq!(index.skeleton().entrance_count(), 2);
        assert!(index.skeleton().skeleton_distance(q, up).is_finite());
    }

    #[test]
    fn stale_index_detected() {
        let (mut space, _, index) = setup();
        let d = space.doors().next().unwrap().id;
        space.close_door(d).unwrap();
        assert!(matches!(
            index.check_fresh(&space),
            Err(IndexError::StaleIndex { .. })
        ));
    }

    #[test]
    fn incremental_build_matches_bulk_search() {
        let (space, store, bulk) = setup();
        let incremental = CompositeIndex::build(
            &space,
            &store,
            IndexConfig {
                bulk_load: false,
                ..IndexConfig::default()
            },
        )
        .unwrap();
        incremental.validate();
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        for r in [5.0, 20.0, 100.0] {
            let a = bulk.range_search(&space, q, r, true);
            let b = incremental.range_search(&space, q, r, true);
            assert_eq!(a.objects, b.objects);
            assert_eq!(a.partitions, b.partitions);
        }
    }
}
