//! The skeleton tier (§III-A.5) and the geometric lower bound (§III-B).
//!
//! The Euclidean lower bound alone is far too loose for multi-floor
//! buildings (the paper's 20-floor example: a 300 m query ball covers 90%
//! of the building even though only the query's own floor qualifies).
//! The skeleton tier captures the staircases concisely: every staircase
//! *entrance* is a node, and an `M × M` matrix `M_s2s` stores lower bounds
//! of entrance-to-entrance indoor distances following the paper's four
//! matrix properties:
//!
//! 1. `M[s,s] = 0`;
//! 2. same-floor entrances: the planar Euclidean distance;
//! 3. entrances of the same staircase: the within-staircase walking
//!    distance;
//! 4. otherwise: the shortest path over the skeleton graph (Floyd–Warshall
//!    closure of properties 2–3).
//!
//! The resulting [`SkeletonTier::min_skeleton_distance`] implements Eq. 10
//! and lower-bounds the true indoor distance (Lemma 6), which is what lets
//! `RangeSearch` prune whole floors.

use idq_geom::{Mbr3, Point2, Rect2};
use idq_model::{DoorId, DoorKind, Floor, IndoorPoint, IndoorSpace, PartitionId};

/// One staircase entrance (a door with `DoorKind::StaircaseEntrance`).
#[derive(Clone, Copy, Debug)]
pub struct Entrance {
    /// The entrance door.
    pub door: DoorId,
    /// The staircase partition it belongs to.
    pub staircase: PartitionId,
    /// Floor of the entrance.
    pub floor: Floor,
    /// Planar position.
    pub position: Point2,
}

/// Per-query scratch for [`SkeletonTier::min_skeleton_distance_pruned`]:
/// the factored inner minimum `g[j] = min_i (head_i + M_s2s[i, j])` and
/// its floor-level lower bound `base = min_j g[j]`, computed lazily per
/// target floor and reused across every MBR a retrieval evaluates.
#[derive(Clone, Debug)]
pub struct SkeletonScratch {
    q_floor: Floor,
    q_point: Point2,
    /// `floors[f] = Some((base, g))` once floor `f` has been seen; `g`
    /// is aligned with the tier's entrance list for that floor.
    floors: Vec<Option<(f64, Vec<f64>)>>,
}

/// The skeleton tier: staircase entrances plus the `M_s2s` matrix.
#[derive(Clone, Debug, Default)]
pub struct SkeletonTier {
    entrances: Vec<Entrance>,
    /// Entrance indices per floor.
    per_floor: Vec<Vec<usize>>,
    /// Row-major `M × M` distance matrix.
    matrix: Vec<f64>,
}

impl SkeletonTier {
    /// Builds the tier from the current space.
    pub fn build(space: &IndoorSpace) -> Self {
        let mut entrances = Vec::new();
        for door in space.doors() {
            if door.kind != DoorKind::StaircaseEntrance || !door.open {
                continue;
            }
            // Identify the staircase side.
            let staircase = door.partitions.into_iter().find(|&p| {
                space
                    .partition(p)
                    .map(|x| x.kind == idq_model::PartitionKind::Staircase)
                    .unwrap_or(false)
            });
            if let Some(staircase) = staircase {
                entrances.push(Entrance {
                    door: door.id,
                    staircase,
                    floor: door.floor,
                    position: door.position,
                });
            }
        }
        let m = entrances.len();
        let mut per_floor: Vec<Vec<usize>> = vec![Vec::new(); space.num_floors()];
        for (i, e) in entrances.iter().enumerate() {
            if let Some(v) = per_floor.get_mut(e.floor as usize) {
                v.push(i);
            }
        }
        // Base matrix per properties 1–3.
        let mut matrix = vec![f64::INFINITY; m * m];
        for i in 0..m {
            matrix[i * m + i] = 0.0;
            for j in (i + 1)..m {
                let (a, b) = (&entrances[i], &entrances[j]);
                let mut w = f64::INFINITY;
                if a.floor == b.floor {
                    w = w.min(a.position.dist(b.position)); // property 2
                }
                if a.staircase == b.staircase {
                    // property 3: within-staircase walking distance.
                    let d = space.intra_distance(
                        IndoorPoint::new(a.position, a.floor),
                        IndoorPoint::new(b.position, b.floor),
                    );
                    w = w.min(d);
                }
                matrix[i * m + j] = w;
                matrix[j * m + i] = w;
            }
        }
        // Property 4: Floyd–Warshall closure.
        for k in 0..m {
            for i in 0..m {
                let dik = matrix[i * m + k];
                if dik.is_infinite() {
                    continue;
                }
                for j in 0..m {
                    let through = dik + matrix[k * m + j];
                    if through < matrix[i * m + j] {
                        matrix[i * m + j] = through;
                    }
                }
            }
        }
        SkeletonTier {
            entrances,
            per_floor,
            matrix,
        }
    }

    /// Number of entrances (`M`).
    pub fn entrance_count(&self) -> usize {
        self.entrances.len()
    }

    /// Entrances on a floor — the paper's `S(q.f)`.
    pub fn entrances_on(&self, floor: Floor) -> impl Iterator<Item = &Entrance> {
        self.per_floor
            .get(floor as usize)
            .into_iter()
            .flatten()
            .map(move |&i| &self.entrances[i])
    }

    /// The matrix entry `M_s2s[i, j]` by entrance indices.
    pub fn matrix_entry(&self, i: usize, j: usize) -> f64 {
        let m = self.entrances.len();
        self.matrix[i * m + j]
    }

    /// Skeleton distance between two indoor points (Def. 2): same floor →
    /// planar Euclidean; different floors → best entrance-to-entrance
    /// route. `∞` when one of the floors has no entrance (truly
    /// unreachable across floors in this model).
    pub fn skeleton_distance(&self, q: IndoorPoint, p: IndoorPoint) -> f64 {
        if q.floor == p.floor {
            return q.point.dist(p.point);
        }
        let m = self.entrances.len();
        let mut best = f64::INFINITY;
        for &i in self.per_floor.get(q.floor as usize).into_iter().flatten() {
            let si = &self.entrances[i];
            let head = q.point.dist(si.position);
            for &j in self.per_floor.get(p.floor as usize).into_iter().flatten() {
                let sj = &self.entrances[j];
                let cand = head + self.matrix[i * m + j] + sj.position.dist(p.point);
                if cand < best {
                    best = cand;
                }
            }
        }
        best
    }

    /// Builds a per-query scratch for
    /// [`Self::min_skeleton_distance_pruned`]. Valid for this tier and
    /// this `q` only — a topology commit rebuilds the tier, so a scratch
    /// must never outlive the retrieval it was created for.
    pub fn scratch(&self, q: IndoorPoint) -> SkeletonScratch {
        SkeletonScratch {
            q_floor: q.floor,
            q_point: q.point,
            floors: vec![None; self.per_floor.len()],
        }
    }

    /// [`Self::min_skeleton_distance`] restructured for a whole
    /// retrieval: Eq. 10's double loop factors as
    /// `min_j ((min_i (head_i + M[i,j])) + rectdist_j)` because addition
    /// is monotone, and the inner minimum `g[j]` depends only on
    /// `(q, target floor)` — the scratch computes it once per floor and
    /// every later MBR on that floor pays a single loop. The factored
    /// value is bit-identical to the double loop (the winning pair runs
    /// through the same `(head + M) + rect` rounding sequence).
    ///
    /// `screen` turns the per-floor floor `base = min_j g[j]` into an
    /// O(1) rejection: when `base > screen` the method returns `base`
    /// (a lower bound of the true metric) without touching the MBR.
    /// Callers must therefore only compare the result against
    /// thresholds `≤ screen`; every such comparison decides exactly as
    /// the exact metric would.
    pub fn min_skeleton_distance_pruned(
        &self,
        s: &mut SkeletonScratch,
        e: &Mbr3,
        screen: f64,
    ) -> f64 {
        if e.covers_floor(s.q_floor) {
            return e.rect.min_dist(s.q_point);
        }
        let target_floor = if s.q_floor < e.floor_lo {
            e.floor_lo
        } else {
            e.floor_hi
        };
        let Some(slot) = s.floors.get_mut(target_floor as usize) else {
            return f64::INFINITY; // no entrances recorded for that floor
        };
        let m = self.entrances.len();
        let (base, g) = slot.get_or_insert_with(|| {
            let on_target = &self.per_floor[target_floor as usize];
            let mut g = Vec::with_capacity(on_target.len());
            for &j in on_target {
                let mut gj = f64::INFINITY;
                for &i in self.per_floor.get(s.q_floor as usize).into_iter().flatten() {
                    let head = s.q_point.dist(self.entrances[i].position);
                    let v = head + self.matrix[i * m + j];
                    if v < gj {
                        gj = v;
                    }
                }
                g.push(gj);
            }
            let base = g.iter().copied().fold(f64::INFINITY, f64::min);
            (base, g)
        });
        if *base > screen {
            return *base;
        }
        let mut best = f64::INFINITY;
        for (k, &j) in self.per_floor[target_floor as usize].iter().enumerate() {
            let cand = g[k] + rect_min_dist(&e.rect, self.entrances[j].position);
            if cand < best {
                best = cand;
            }
        }
        best
    }

    /// Minimum skeleton distance from `q` to an entity MBR (Eq. 10):
    /// if `q`'s floor is covered, the planar Euclidean `min_dist`;
    /// otherwise the best route through entrances on `q`'s floor and on the
    /// entity's nearest covered boundary floors (`e.lf` / `e.uf`).
    pub fn min_skeleton_distance(&self, q: IndoorPoint, floor_height: f64, e: &Mbr3) -> f64 {
        if e.covers_floor(q.floor) {
            return e.rect.min_dist(q.point);
        }
        let m = self.entrances.len();
        // The closer boundary floor of the entity (floors are consecutive).
        let target_floor = if q.floor < e.floor_lo {
            e.floor_lo
        } else {
            e.floor_hi
        };
        let _ = floor_height; // vertical drop is accounted for inside M_s2s
        let mut best = f64::INFINITY;
        for &i in self.per_floor.get(q.floor as usize).into_iter().flatten() {
            let si = &self.entrances[i];
            let head = q.point.dist(si.position);
            if head >= best {
                continue;
            }
            for &j in self
                .per_floor
                .get(target_floor as usize)
                .into_iter()
                .flatten()
            {
                let sj = &self.entrances[j];
                let cand = head + self.matrix[i * m + j] + rect_min_dist(&e.rect, sj.position);
                if cand < best {
                    best = cand;
                }
            }
        }
        best
    }
}

#[inline]
fn rect_min_dist(r: &Rect2, p: Point2) -> f64 {
    r.min_dist(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::Rect2;
    use idq_model::FloorPlanBuilder;

    /// Two floors, one hallway each, connected by one staircase at x≈20.
    fn two_floor_space() -> (IndoorSpace, PartitionId) {
        let mut b = FloorPlanBuilder::new(4.0);
        let h0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 20.0, 10.0))
            .unwrap();
        let h1 = b
            .add_room(1, Rect2::from_bounds(0.0, 0.0, 20.0, 10.0))
            .unwrap();
        let st = b
            .add_staircase((0, 1), Rect2::from_bounds(20.0, 0.0, 24.0, 10.0))
            .unwrap();
        b.add_staircase_entrance(st, h0, 0, Point2::new(20.0, 5.0))
            .unwrap();
        b.add_staircase_entrance(st, h1, 1, Point2::new(20.0, 5.0))
            .unwrap();
        (b.finish().unwrap(), st)
    }

    #[test]
    fn matrix_properties_hold() {
        let (s, st) = two_floor_space();
        let t = SkeletonTier::build(&s);
        assert_eq!(t.entrance_count(), 2);
        // Property 1: zero diagonal.
        assert_eq!(t.matrix_entry(0, 0), 0.0);
        // Property 3: same staircase, vertical walk 4 m × factor 2 = 8 m.
        assert!((t.matrix_entry(0, 1) - 8.0).abs() < 1e-9);
        let _ = st;
    }

    #[test]
    fn same_floor_skeleton_is_euclidean() {
        let (s, _) = two_floor_space();
        let t = SkeletonTier::build(&s);
        let a = IndoorPoint::new(Point2::new(1.0, 5.0), 0);
        let b = IndoorPoint::new(Point2::new(4.0, 1.0), 0);
        assert!((t.skeleton_distance(a, b) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn cross_floor_goes_through_entrances() {
        let (s, _) = two_floor_space();
        let t = SkeletonTier::build(&s);
        let a = IndoorPoint::new(Point2::new(10.0, 5.0), 0);
        let b = IndoorPoint::new(Point2::new(10.0, 5.0), 1);
        // 10 m to the entrance, 8 m up, 10 m back.
        assert!((t.skeleton_distance(a, b) - 28.0).abs() < 1e-9);
    }

    #[test]
    fn skeleton_lower_bounds_indoor_distance() {
        use idq_distance::indoor_distance;
        use idq_model::DoorsGraph;
        let (s, _) = two_floor_space();
        let g = DoorsGraph::build(&s);
        let t = SkeletonTier::build(&s);
        for (ax, af, bx, bf) in [
            (1.0, 0u16, 19.0, 1u16),
            (10.0, 0, 10.0, 1),
            (3.0, 1, 18.0, 0),
        ] {
            let a = IndoorPoint::new(Point2::new(ax, 5.0), af);
            let b = IndoorPoint::new(Point2::new(bx, 5.0), bf);
            let sk = t.skeleton_distance(a, b);
            let real = indoor_distance(&s, &g, a, b).unwrap();
            assert!(
                sk <= real + 1e-9,
                "Lemma 6 violated: skeleton {sk} > indoor {real}"
            );
        }
    }

    #[test]
    fn eq10_same_floor_is_planar_mindist() {
        let (s, _) = two_floor_space();
        let t = SkeletonTier::build(&s);
        let e = Mbr3::planar(Rect2::from_bounds(10.0, 0.0, 14.0, 10.0), 0, 0.0);
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        assert!((t.min_skeleton_distance(q, 4.0, &e) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn eq10_cross_floor_adds_entrance_route() {
        let (s, _) = two_floor_space();
        let t = SkeletonTier::build(&s);
        let e = Mbr3::planar(Rect2::from_bounds(0.0, 0.0, 4.0, 10.0), 1, 4.0);
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        // 18 m to the entrance + 8 up + 16 back to the rect.
        let d = t.min_skeleton_distance(q, 4.0, &e);
        assert!((d - (18.0 + 8.0 + 16.0)).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn unreachable_floor_gives_infinity() {
        // A floor with no staircase entrance is unreachable through the
        // skeleton.
        let mut b = FloorPlanBuilder::new(4.0);
        b.add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        b.add_room(1, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let s = b.finish().unwrap();
        let t = SkeletonTier::build(&s);
        assert_eq!(t.entrance_count(), 0);
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        let p = IndoorPoint::new(Point2::new(5.0, 5.0), 1);
        assert!(t.skeleton_distance(q, p).is_infinite());
    }

    #[test]
    fn multi_staircase_routes_choose_best() {
        // Two staircases; the far one is closer to the target point on the
        // upper floor.
        let mut b = FloorPlanBuilder::new(4.0);
        let h0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 100.0, 10.0))
            .unwrap();
        let h1 = b
            .add_room(1, Rect2::from_bounds(0.0, 0.0, 100.0, 10.0))
            .unwrap();
        let s1 = b
            .add_staircase((0, 1), Rect2::from_bounds(100.0, 0.0, 104.0, 10.0))
            .unwrap();
        let s2 = b
            .add_staircase((0, 1), Rect2::from_bounds(-4.0, 0.0, 0.0, 10.0))
            .unwrap();
        b.add_staircase_entrance(s1, h0, 0, Point2::new(100.0, 5.0))
            .unwrap();
        b.add_staircase_entrance(s1, h1, 1, Point2::new(100.0, 5.0))
            .unwrap();
        b.add_staircase_entrance(s2, h0, 0, Point2::new(0.0, 5.0))
            .unwrap();
        b.add_staircase_entrance(s2, h1, 1, Point2::new(0.0, 5.0))
            .unwrap();
        let s = b.finish().unwrap();
        let t = SkeletonTier::build(&s);
        assert_eq!(t.entrance_count(), 4);
        // q near x=10 on floor 0, target near x=5 on floor 1: the left
        // staircase wins.
        let q = IndoorPoint::new(Point2::new(10.0, 5.0), 0);
        let p = IndoorPoint::new(Point2::new(5.0, 5.0), 1);
        let d = t.skeleton_distance(q, p);
        assert!((d - (10.0 + 8.0 + 5.0)).abs() < 1e-9, "got {d}");
    }
}
