//! Index-layer errors.

use idq_model::PartitionId;
use idq_objects::ObjectId;

/// Errors raised by the composite index.
#[derive(Clone, Debug, PartialEq)]
pub enum IndexError {
    /// The partition has no index units (not indexed / already removed).
    PartitionNotIndexed(PartitionId),
    /// The object is not present in the object layer.
    ObjectNotIndexed(ObjectId),
    /// The object is already present.
    ObjectAlreadyIndexed(ObjectId),
    /// The index no longer matches the space (apply the missing topology
    /// events or rebuild).
    StaleIndex {
        /// Version the index reflects.
        index_version: u64,
        /// Current space version.
        space_version: u64,
    },
    /// Propagated model error.
    Model(idq_model::ModelError),
    /// Propagated object error.
    Object(idq_objects::ObjectError),
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::PartitionNotIndexed(p) => write!(f, "partition {p} is not indexed"),
            IndexError::ObjectNotIndexed(o) => write!(f, "object {o} is not indexed"),
            IndexError::ObjectAlreadyIndexed(o) => write!(f, "object {o} is already indexed"),
            IndexError::StaleIndex {
                index_version,
                space_version,
            } => write!(
                f,
                "index at space version {index_version}, space at {space_version}"
            ),
            IndexError::Model(e) => write!(f, "model error: {e}"),
            IndexError::Object(e) => write!(f, "object error: {e}"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<idq_model::ModelError> for IndexError {
    fn from(e: idq_model::ModelError) -> Self {
        IndexError::Model(e)
    }
}

impl From<idq_objects::ObjectError> for IndexError {
    fn from(e: idq_objects::ObjectError) -> Self {
        IndexError::Object(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        assert!(IndexError::ObjectNotIndexed(ObjectId(3))
            .to_string()
            .contains("O3"));
        assert!(IndexError::StaleIndex {
            index_version: 1,
            space_version: 5
        }
        .to_string()
        .contains('5'));
    }
}
