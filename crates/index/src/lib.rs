//! The composite index for indoor spaces and moving objects (§III).
//!
//! Three layers, as in the paper's Figure 2:
//!
//! * **Geometric layer** — the [`rtree`] *tree tier* (an R\*-style tree over
//!   decomposed index units with the 1 cm vertical trick) and the
//!   [`skeleton`] *skeleton tier* (staircase-entrance graph + `M_s2s`
//!   matrix providing the geometric lower bound of Lemma 6 / Eq. 10);
//! * **Topological layer** — the doors graph integrated at the leaf level
//!   (inter-partition links) plus the `h-table` mapping index units to
//!   their partitions;
//! * **Object layer** — per-unit object buckets plus the `o-table` mapping
//!   each object to the units it overlaps, sharded by floor
//!   ([`object_layer::FloorShard`]) so copy-on-write index versions share
//!   every untouched floor's slice structurally.
//!
//! [`CompositeIndex`] ties the layers together, offers `RangeSearch`
//! (Algorithm 4), and maintains every layer incrementally under both
//! object updates and topology updates (§III-C) — the design the paper
//! contrasts with expensive door-to-door distance pre-computation.

pub mod composite;
pub mod error;
pub mod object_layer;
pub mod rtree;
pub mod skeleton;
pub mod units;

pub use composite::{BuildStats, CompositeIndex, IndexConfig, RangeSearchOutcome};
pub use error::IndexError;
pub use object_layer::{FloorShard, ObjectLayer};
pub use rtree::RTree;
pub use skeleton::SkeletonTier;
pub use units::{IndexUnit, UnitId, UnitStore};
