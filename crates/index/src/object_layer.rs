//! The object layer (§III-A.3): per-unit buckets plus the `o-table`.
//!
//! Every leaf index unit carries a bucket of the objects overlapping it;
//! the `o-table` maps each object to all units it overlaps (an uncertain
//! object may straddle several partitions, hence several buckets). Both
//! directions are maintained under object and topology updates.

use crate::error::IndexError;
use crate::units::UnitId;
use idq_geom::Mbr3;
use idq_objects::ObjectId;
use std::collections::HashMap;

#[derive(Clone, Debug)]
struct ObjEntry {
    units: Vec<UnitId>,
    mbr: Mbr3,
}

/// Buckets + o-table.
#[derive(Clone, Debug, Default)]
pub struct ObjectLayer {
    buckets: Vec<Vec<ObjectId>>,
    o_table: HashMap<ObjectId, ObjEntry>,
}

impl ObjectLayer {
    /// Empty layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures bucket slots exist for `slots` units.
    pub fn grow(&mut self, slots: usize) {
        if self.buckets.len() < slots {
            self.buckets.resize(slots, Vec::new());
        }
    }

    /// Registers an object in the given units with its search MBR.
    pub fn insert(
        &mut self,
        id: ObjectId,
        units: Vec<UnitId>,
        mbr: Mbr3,
    ) -> Result<(), IndexError> {
        if self.o_table.contains_key(&id) {
            return Err(IndexError::ObjectAlreadyIndexed(id));
        }
        for &u in &units {
            self.grow(u.index() + 1);
            self.buckets[u.index()].push(id);
        }
        self.o_table.insert(id, ObjEntry { units, mbr });
        Ok(())
    }

    /// Re-registers an object under a new unit set and search MBR, editing
    /// only the buckets whose membership actually changes. A move within
    /// one partition typically keeps an identical unit list, reducing the
    /// bucket maintenance to an MBR overwrite.
    pub fn update(
        &mut self,
        id: ObjectId,
        units: Vec<UnitId>,
        mbr: Mbr3,
    ) -> Result<(), IndexError> {
        let ObjectLayer { buckets, o_table } = self;
        let entry = o_table
            .get_mut(&id)
            .ok_or(IndexError::ObjectNotIndexed(id))?;
        if entry.units != units {
            for &u in entry.units.iter().filter(|u| !units.contains(u)) {
                if let Some(bucket) = buckets.get_mut(u.index()) {
                    bucket.retain(|&o| o != id);
                }
            }
            for &u in units.iter().filter(|u| !entry.units.contains(u)) {
                if buckets.len() <= u.index() {
                    buckets.resize(u.index() + 1, Vec::new());
                }
                buckets[u.index()].push(id);
            }
            entry.units = units;
        }
        entry.mbr = mbr;
        Ok(())
    }

    /// Unregisters an object, returning the units it occupied.
    pub fn remove(&mut self, id: ObjectId) -> Result<Vec<UnitId>, IndexError> {
        let entry = self
            .o_table
            .remove(&id)
            .ok_or(IndexError::ObjectNotIndexed(id))?;
        for &u in &entry.units {
            if let Some(bucket) = self.buckets.get_mut(u.index()) {
                bucket.retain(|&o| o != id);
            }
        }
        Ok(entry.units)
    }

    /// The bucket of one unit.
    pub fn objects_in(&self, u: UnitId) -> &[ObjectId] {
        self.buckets
            .get(u.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The units an object overlaps — the `o-table` lookup.
    pub fn units_of(&self, id: ObjectId) -> Result<&[UnitId], IndexError> {
        self.o_table
            .get(&id)
            .map(|e| e.units.as_slice())
            .ok_or(IndexError::ObjectNotIndexed(id))
    }

    /// The search MBR stored for an object (uncertainty region ∪
    /// instances).
    pub fn object_mbr(&self, id: ObjectId) -> Result<Mbr3, IndexError> {
        self.o_table
            .get(&id)
            .map(|e| e.mbr)
            .ok_or(IndexError::ObjectNotIndexed(id))
    }

    /// Whether the object is indexed.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.o_table.contains_key(&id)
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.o_table.len()
    }

    /// `true` iff no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.o_table.is_empty()
    }

    /// All object ids registered in any of the given units (deduplicated).
    pub fn objects_in_units<'a>(&self, units: impl Iterator<Item = &'a UnitId>) -> Vec<ObjectId> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for &u in units {
            for &o in self.objects_in(u) {
                if seen.insert(o) {
                    out.push(o);
                }
            }
        }
        out
    }

    /// Test/maintenance helper: verifies bucket ↔ o-table consistency.
    /// Panics on violation.
    pub fn validate(&self) {
        for (id, entry) in &self.o_table {
            for u in &entry.units {
                assert!(
                    self.objects_in(*u).contains(id),
                    "o-table says {id} in {u} but bucket disagrees"
                );
            }
        }
        for (u, bucket) in self.buckets.iter().enumerate() {
            for id in bucket {
                let entry = self.o_table.get(id).expect("bucket object in o-table");
                assert!(
                    entry.units.iter().any(|x| x.index() == u),
                    "bucket {u} holds {id} but o-table disagrees"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::Rect2;

    fn mbr() -> Mbr3 {
        Mbr3::planar(Rect2::from_bounds(0.0, 0.0, 5.0, 5.0), 0, 0.0)
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut l = ObjectLayer::new();
        l.insert(ObjectId(1), vec![UnitId(0), UnitId(2)], mbr())
            .unwrap();
        assert_eq!(l.units_of(ObjectId(1)).unwrap(), &[UnitId(0), UnitId(2)]);
        assert_eq!(l.objects_in(UnitId(0)), &[ObjectId(1)]);
        assert_eq!(l.objects_in(UnitId(1)), &[] as &[ObjectId]);
        l.validate();
        let units = l.remove(ObjectId(1)).unwrap();
        assert_eq!(units, vec![UnitId(0), UnitId(2)]);
        assert!(l.is_empty());
        assert!(l.objects_in(UnitId(0)).is_empty());
        l.validate();
    }

    #[test]
    fn duplicate_and_missing_are_errors() {
        let mut l = ObjectLayer::new();
        l.insert(ObjectId(1), vec![UnitId(0)], mbr()).unwrap();
        assert!(matches!(
            l.insert(ObjectId(1), vec![UnitId(1)], mbr()),
            Err(IndexError::ObjectAlreadyIndexed(_))
        ));
        assert!(matches!(
            l.remove(ObjectId(9)),
            Err(IndexError::ObjectNotIndexed(_))
        ));
        assert!(matches!(
            l.units_of(ObjectId(9)),
            Err(IndexError::ObjectNotIndexed(_))
        ));
    }

    #[test]
    fn update_edits_only_changed_buckets() {
        let mut l = ObjectLayer::new();
        l.insert(ObjectId(1), vec![UnitId(0), UnitId(1)], mbr())
            .unwrap();
        l.insert(ObjectId(2), vec![UnitId(1)], mbr()).unwrap();
        // Same units: pure MBR overwrite, bucket order untouched.
        let m2 = Mbr3::planar(Rect2::from_bounds(1.0, 1.0, 2.0, 2.0), 0, 0.0);
        l.update(ObjectId(1), vec![UnitId(0), UnitId(1)], m2)
            .unwrap();
        assert_eq!(l.objects_in(UnitId(1)), &[ObjectId(1), ObjectId(2)]);
        assert_eq!(l.object_mbr(ObjectId(1)).unwrap(), m2);
        // Shifted units: leaves unit 0, enters unit 2, stays in unit 1.
        l.update(ObjectId(1), vec![UnitId(1), UnitId(2)], mbr())
            .unwrap();
        assert!(l.objects_in(UnitId(0)).is_empty());
        assert_eq!(l.objects_in(UnitId(1)), &[ObjectId(1), ObjectId(2)]);
        assert_eq!(l.objects_in(UnitId(2)), &[ObjectId(1)]);
        l.validate();
        assert!(matches!(
            l.update(ObjectId(9), vec![UnitId(0)], mbr()),
            Err(IndexError::ObjectNotIndexed(_))
        ));
    }

    #[test]
    fn dedup_across_buckets() {
        let mut l = ObjectLayer::new();
        l.insert(ObjectId(1), vec![UnitId(0), UnitId(1)], mbr())
            .unwrap();
        l.insert(ObjectId(2), vec![UnitId(1)], mbr()).unwrap();
        let units = [UnitId(0), UnitId(1)];
        let got = l.objects_in_units(units.iter());
        assert_eq!(got.len(), 2);
    }
}
