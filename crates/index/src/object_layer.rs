//! The object layer (§III-A.3): per-unit buckets plus the `o-table` —
//! **sharded by floor** for fine-grained structural sharing.
//!
//! Every leaf index unit carries a bucket of the objects overlapping it;
//! the `o-table` maps each object to all units it overlaps (an uncertain
//! object may straddle several partitions, hence several buckets). Both
//! directions are maintained under object and topology updates.
//!
//! Copy-on-write layout: the o-table is split into one [`FloorShard`] per
//! floor behind its own [`Arc`] (routed by the floor of each object's
//! search MBR), and every bucket is individually `Arc`-shared. Cloning a
//! layer is therefore O(floors + units) pointer bumps, and a mutation
//! deep-copies only the o-table shard(s) of the touched floor(s) plus the
//! buckets whose membership actually changes — an intra-floor move costs
//! O(objects on that floor) map entries and O(changed buckets) bucket
//! copies, never O(all objects).

use crate::error::IndexError;
use crate::units::UnitId;
use idq_geom::Mbr3;
use idq_model::Floor;
use idq_objects::{FloorShards, ObjectId, Shard};
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Clone, Debug)]
struct ObjEntry {
    /// Units the object overlaps, `Arc`-shared so shard copies bump a
    /// refcount instead of reallocating every unit list.
    units: Arc<[UnitId]>,
    mbr: Mbr3,
}

/// One floor's slice of the `o-table`: the per-floor unit of structural
/// sharing between object-layer versions (the index-side sibling of
/// `idq_objects::StoreShard`).
///
/// A shard records every object whose search MBR lies on its floor; all
/// mutation goes through the owning [`ObjectLayer`], which routes by the
/// MBR's floor and copy-on-writes only the shard(s) it lands in.
#[derive(Clone, Debug, Default)]
pub struct FloorShard {
    o_table: HashMap<ObjectId, ObjEntry>,
}

impl FloorShard {
    /// Number of objects filed on this floor.
    pub fn len(&self) -> usize {
        self.o_table.len()
    }

    /// `true` iff no objects are filed on this floor.
    pub fn is_empty(&self) -> bool {
        self.o_table.is_empty()
    }

    /// Whether this shard holds `id`.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.o_table.contains_key(&id)
    }
}

impl Shard for FloorShard {
    fn contains_id(&self, id: ObjectId) -> bool {
        self.contains(id)
    }
    fn is_empty(&self) -> bool {
        self.is_empty()
    }
}

/// Buckets + o-table.
#[derive(Clone, Debug, Default)]
pub struct ObjectLayer {
    /// Per-unit buckets, individually `Arc`-shared: a layer clone bumps
    /// one refcount per unit slot, and an update deep-copies only the
    /// buckets whose membership changes.
    buckets: Vec<Arc<Vec<ObjectId>>>,
    /// The o-table, sharded by floor (see [`FloorShard`]).
    shards: FloorShards<FloorShard>,
    /// Total indexed objects across all shards.
    count: usize,
}

impl ObjectLayer {
    /// Empty layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures bucket slots exist for `slots` units.
    pub fn grow(&mut self, slots: usize) {
        if self.buckets.len() < slots {
            self.buckets.resize_with(slots, Arc::default);
        }
    }

    fn bucket_push(&mut self, u: UnitId, id: ObjectId) {
        self.grow(u.index() + 1);
        Arc::make_mut(&mut self.buckets[u.index()]).push(id);
    }

    fn bucket_drop(&mut self, u: UnitId, id: ObjectId) {
        if let Some(bucket) = self.buckets.get_mut(u.index()) {
            Arc::make_mut(bucket).retain(|&o| o != id);
        }
    }

    /// Registers an object in the given units with its search MBR. The
    /// object is filed under the MBR's floor (object MBRs are planar).
    pub fn insert(
        &mut self,
        id: ObjectId,
        units: Vec<UnitId>,
        mbr: Mbr3,
    ) -> Result<(), IndexError> {
        if self.shards.find(id).is_some() {
            return Err(IndexError::ObjectAlreadyIndexed(id));
        }
        for &u in &units {
            self.bucket_push(u, id);
        }
        self.shards.slot_mut(mbr.floor_lo).o_table.insert(
            id,
            ObjEntry {
                units: units.into(),
                mbr,
            },
        );
        self.shards.file(id, mbr.floor_lo);
        self.count += 1;
        Ok(())
    }

    /// Re-registers an object under a new unit set and search MBR, editing
    /// only the buckets whose membership actually changes. A move within
    /// one partition typically keeps an identical unit list, reducing the
    /// bucket maintenance to an MBR overwrite; a move across floors
    /// re-homes the o-table entry, touching both floors' shards.
    pub fn update(
        &mut self,
        id: ObjectId,
        units: Vec<UnitId>,
        mbr: Mbr3,
    ) -> Result<(), IndexError> {
        let old_f = self
            .shards
            .find(id)
            .ok_or(IndexError::ObjectNotIndexed(id))?;
        self.update_in_shard(old_f, id, units, mbr);
        Ok(())
    }

    fn update_in_shard(&mut self, old_f: usize, id: ObjectId, units: Vec<UnitId>, mbr: Mbr3) {
        let old_units = Arc::clone(
            &self
                .shards
                .get(old_f as Floor)
                .expect("caller located the shard")
                .o_table[&id]
                .units,
        );
        let units = if old_units.as_ref() == units.as_slice() {
            // Same unit set: no bucket edits, and the shared unit list is
            // reused (the update reduces to an o-table entry overwrite).
            old_units
        } else {
            for &u in old_units.iter().filter(|u| !units.contains(u)) {
                self.bucket_drop(u, id);
            }
            for &u in units.iter().filter(|u| !old_units.contains(u)) {
                self.bucket_push(u, id);
            }
            units.into()
        };
        let new_f = self.shards.slot(mbr.floor_lo);
        let entry = ObjEntry { units, mbr };
        if old_f != new_f {
            self.shards.make_mut(old_f).o_table.remove(&id);
            self.shards.file(id, mbr.floor_lo);
        }
        self.shards.make_mut(new_f).o_table.insert(id, entry);
    }

    /// Unregisters an object, returning the (shared) unit list it
    /// occupied — an `Arc`, not a copy, since most callers discard it.
    pub fn remove(&mut self, id: ObjectId) -> Result<Arc<[UnitId]>, IndexError> {
        let f = self
            .shards
            .find(id)
            .ok_or(IndexError::ObjectNotIndexed(id))?;
        Ok(self.remove_in_shard(f, id))
    }

    fn remove_in_shard(&mut self, f: usize, id: ObjectId) -> Arc<[UnitId]> {
        let entry = self
            .shards
            .make_mut(f)
            .o_table
            .remove(&id)
            .expect("caller located the id");
        self.shards.unfile(id);
        for &u in entry.units.iter() {
            self.bucket_drop(u, id);
        }
        self.count -= 1;
        entry.units
    }

    /// The bucket of one unit.
    pub fn objects_in(&self, u: UnitId) -> &[ObjectId] {
        self.buckets
            .get(u.index())
            .map(|b| b.as_slice())
            .unwrap_or(&[])
    }

    fn entry(&self, id: ObjectId) -> Option<&ObjEntry> {
        let f = self.shards.find(id)?;
        self.shards.get(f as Floor)?.o_table.get(&id)
    }

    /// The units an object overlaps — the `o-table` lookup.
    pub fn units_of(&self, id: ObjectId) -> Result<&[UnitId], IndexError> {
        self.entry(id)
            .map(|e| e.units.as_ref())
            .ok_or(IndexError::ObjectNotIndexed(id))
    }

    /// The search MBR stored for an object (uncertainty region ∪
    /// instances).
    pub fn object_mbr(&self, id: ObjectId) -> Result<Mbr3, IndexError> {
        self.entry(id)
            .map(|e| e.mbr)
            .ok_or(IndexError::ObjectNotIndexed(id))
    }

    /// Whether the object is indexed.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.shards.find(id).is_some()
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` iff no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// All object ids registered in any of the given units (deduplicated).
    pub fn objects_in_units<'a>(&self, units: impl Iterator<Item = &'a UnitId>) -> Vec<ObjectId> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for &u in units {
            for &o in self.objects_in(u) {
                if seen.insert(o) {
                    out.push(o);
                }
            }
        }
        out
    }

    // ---- shard introspection (structural-sharing contract) ---------------

    /// Number of floor shards (highest floor an object was ever filed
    /// under, plus one — shards are never dropped, only emptied).
    pub fn shard_count(&self) -> usize {
        self.shards.slot_count()
    }

    /// Read access to one floor's shard, if that floor has a slot.
    pub fn shard(&self, floor: Floor) -> Option<&FloorShard> {
        self.shards.get(floor)
    }

    /// Whether `self` and `other` share floor `floor`'s o-table shard
    /// **structurally** (see [`FloorShards::same_shard`]).
    pub fn same_shard(&self, other: &Self, floor: Floor) -> bool {
        self.shards.same_shard(&other.shards, floor)
    }

    /// Fraction-free count of buckets `self` shares structurally with
    /// `other` (same heap allocation), over the slots both have. The
    /// complement is exactly the buckets a commit deep-copied.
    pub fn shared_buckets_with(&self, other: &Self) -> usize {
        self.buckets
            .iter()
            .zip(&other.buckets)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Test/maintenance helper: verifies bucket ↔ o-table consistency
    /// (including that every entry is filed under its MBR's floor and the
    /// object count matches). Panics on violation.
    pub fn validate(&self) {
        let mut entries = 0;
        for (f, shard) in self.shards.iter().enumerate() {
            for (id, entry) in &shard.o_table {
                entries += 1;
                assert_eq!(
                    entry.mbr.floor_lo as usize, f,
                    "{id} filed under shard {f} but its MBR says floor {}",
                    entry.mbr.floor_lo
                );
                self.shards.assert_routed(*id, Some(f as Floor));
                for u in entry.units.iter() {
                    assert!(
                        self.objects_in(*u).contains(id),
                        "o-table says {id} in {u} but bucket disagrees"
                    );
                }
            }
        }
        assert_eq!(entries, self.count, "shard entries == len");
        for (u, bucket) in self.buckets.iter().enumerate() {
            for id in bucket.iter() {
                let entry = self.entry(*id).expect("bucket object in o-table");
                assert!(
                    entry.units.iter().any(|x| x.index() == u),
                    "bucket {u} holds {id} but o-table disagrees"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::Rect2;

    // Per-floor shards are staged on writer threads and `Arc`-shared with
    // reader snapshots; they must stay `Send + Sync` by construction.
    const fn assert_send_sync<T: Send + Sync>() {}
    const _: () = {
        assert_send_sync::<FloorShard>();
        assert_send_sync::<ObjectLayer>();
    };

    fn mbr() -> Mbr3 {
        Mbr3::planar(Rect2::from_bounds(0.0, 0.0, 5.0, 5.0), 0, 0.0)
    }

    fn mbr_on(floor: Floor) -> Mbr3 {
        Mbr3::planar(
            Rect2::from_bounds(0.0, 0.0, 5.0, 5.0),
            floor,
            floor as f64 * 4.0,
        )
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut l = ObjectLayer::new();
        l.insert(ObjectId(1), vec![UnitId(0), UnitId(2)], mbr())
            .unwrap();
        assert_eq!(l.units_of(ObjectId(1)).unwrap(), &[UnitId(0), UnitId(2)]);
        assert_eq!(l.objects_in(UnitId(0)), &[ObjectId(1)]);
        assert_eq!(l.objects_in(UnitId(1)), &[] as &[ObjectId]);
        l.validate();
        let units = l.remove(ObjectId(1)).unwrap();
        assert_eq!(units.as_ref(), &[UnitId(0), UnitId(2)]);
        assert!(l.is_empty());
        assert!(l.objects_in(UnitId(0)).is_empty());
        l.validate();
    }

    #[test]
    fn duplicate_and_missing_are_errors() {
        let mut l = ObjectLayer::new();
        l.insert(ObjectId(1), vec![UnitId(0)], mbr()).unwrap();
        assert!(matches!(
            l.insert(ObjectId(1), vec![UnitId(1)], mbr()),
            Err(IndexError::ObjectAlreadyIndexed(_))
        ));
        // Across floors too: the o-table is global even though sharded.
        assert!(matches!(
            l.insert(ObjectId(1), vec![UnitId(1)], mbr_on(2)),
            Err(IndexError::ObjectAlreadyIndexed(_))
        ));
        assert!(matches!(
            l.remove(ObjectId(9)),
            Err(IndexError::ObjectNotIndexed(_))
        ));
        assert!(matches!(
            l.units_of(ObjectId(9)),
            Err(IndexError::ObjectNotIndexed(_))
        ));
    }

    #[test]
    fn update_edits_only_changed_buckets() {
        let mut l = ObjectLayer::new();
        l.insert(ObjectId(1), vec![UnitId(0), UnitId(1)], mbr())
            .unwrap();
        l.insert(ObjectId(2), vec![UnitId(1)], mbr()).unwrap();
        // Same units: pure MBR overwrite, bucket order untouched.
        let m2 = Mbr3::planar(Rect2::from_bounds(1.0, 1.0, 2.0, 2.0), 0, 0.0);
        let before = l.clone();
        l.update(ObjectId(1), vec![UnitId(0), UnitId(1)], m2)
            .unwrap();
        assert_eq!(l.objects_in(UnitId(1)), &[ObjectId(1), ObjectId(2)]);
        assert_eq!(l.object_mbr(ObjectId(1)).unwrap(), m2);
        assert_eq!(
            before.shared_buckets_with(&l),
            l.buckets.len(),
            "same-units update touches no bucket"
        );
        // Shifted units: leaves unit 0, enters unit 2, stays in unit 1.
        l.update(ObjectId(1), vec![UnitId(1), UnitId(2)], mbr())
            .unwrap();
        assert!(l.objects_in(UnitId(0)).is_empty());
        assert_eq!(l.objects_in(UnitId(1)), &[ObjectId(1), ObjectId(2)]);
        assert_eq!(l.objects_in(UnitId(2)), &[ObjectId(1)]);
        l.validate();
        assert!(matches!(
            l.update(ObjectId(9), vec![UnitId(0)], mbr()),
            Err(IndexError::ObjectNotIndexed(_))
        ));
    }

    #[test]
    fn cross_floor_update_rehomes_the_entry() {
        let mut l = ObjectLayer::new();
        l.insert(ObjectId(1), vec![UnitId(0)], mbr_on(0)).unwrap();
        l.insert(ObjectId(2), vec![UnitId(5)], mbr_on(2)).unwrap();
        l.update(ObjectId(1), vec![UnitId(5)], mbr_on(2)).unwrap();
        assert!(l.shard(0).unwrap().is_empty());
        assert_eq!(l.shard(2).unwrap().len(), 2);
        assert_eq!(l.len(), 2);
        assert_eq!(l.objects_in(UnitId(5)), &[ObjectId(2), ObjectId(1)]);
        l.validate();
    }

    #[test]
    fn clones_share_untouched_shards_and_buckets() {
        let mut a = ObjectLayer::new();
        a.insert(ObjectId(1), vec![UnitId(0)], mbr_on(0)).unwrap();
        a.insert(ObjectId(2), vec![UnitId(7)], mbr_on(1)).unwrap();
        let mut b = a.clone();
        assert!(a.same_shard(&b, 0) && a.same_shard(&b, 1));
        assert_eq!(a.shared_buckets_with(&b), a.buckets.len());
        // Mutate floor 1 only: floor 0's shard and unit 0's bucket stay
        // structurally shared.
        b.update(ObjectId(2), vec![UnitId(6)], mbr_on(1)).unwrap();
        assert!(a.same_shard(&b, 0), "floor 0 untouched");
        assert!(!a.same_shard(&b, 1), "floor 1 copied");
        assert!(
            Arc::ptr_eq(&a.buckets[0], &b.buckets[0]),
            "unit 0's bucket untouched"
        );
        a.validate();
        b.validate();
    }

    #[test]
    fn dedup_across_buckets() {
        let mut l = ObjectLayer::new();
        l.insert(ObjectId(1), vec![UnitId(0), UnitId(1)], mbr())
            .unwrap();
        l.insert(ObjectId(2), vec![UnitId(1)], mbr()).unwrap();
        let units = [UnitId(0), UnitId(1)];
        let got = l.objects_in_units(units.iter());
        assert_eq!(got.len(), 2);
    }
}
