//! The indR-tree tier (§III-A.2): an R\*-style tree over index units.
//!
//! Adaptation points from the paper:
//!
//! * entries are *planar* MBRs placed in 3D; construction heuristics pad
//!   the vertical side by 1 cm ([`Mbr3::build_volume`]) while query-phase
//!   distances ignore the pad — the paper's trick to keep volume-based
//!   splits meaningful without distorting distances;
//! * construction uses Sort-Tile-Recursive packing (the paper uses a
//!   *packed* R\*-tree, §V-A) grouped floor-first, so same-floor units
//!   share subtrees;
//! * dynamic inserts descend by least volume enlargement and split
//!   overflowing nodes on the axis of largest centre spread at the median
//!   (an STR-consistent split; R\*'s forced reinsertion is intentionally
//!   omitted — documented deviation, irrelevant to the measured update
//!   costs which are dominated by bucket moves);
//! * deletions tolerate underfull nodes (MBRs are recomputed, empty nodes
//!   pruned), which keeps `deletePartition` O(height) as the paper's
//!   Fig. 15(c) expects.

use crate::units::UnitId;
use idq_geom::{Mbr3, OrdF64};

/// A leaf entry: one index unit.
#[derive(Clone, Copy, Debug)]
pub struct LeafEntry {
    /// The unit.
    pub unit: UnitId,
    /// Its 3D MBR.
    pub mbr: Mbr3,
}

#[derive(Clone, Debug)]
enum NodeKind {
    Leaf(Vec<LeafEntry>),
    Inner(Vec<usize>),
}

#[derive(Clone, Debug)]
struct Node {
    mbr: Mbr3,
    kind: NodeKind,
}

/// Statistics of one tree search (feeds the Fig. 15(a) experiment).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Tree nodes visited.
    pub nodes_visited: usize,
    /// Leaf entries whose MBR metric was evaluated.
    pub entries_checked: usize,
}

/// The indR-tree.
#[derive(Clone, Debug)]
pub struct RTree {
    nodes: Vec<Node>,
    root: usize,
    fanout: usize,
    len: usize,
}

impl RTree {
    /// An empty tree with the given fanout (paper default: 20).
    pub fn new(fanout: usize) -> Self {
        let fanout = fanout.max(2);
        RTree {
            nodes: vec![Node {
                mbr: Mbr3::empty_sentinel(),
                kind: NodeKind::Leaf(Vec::new()),
            }],
            root: 0,
            fanout,
            len: 0,
        }
    }

    /// Sort-Tile-Recursive bulk load ("packed" construction, §V-A).
    pub fn bulk_load(mut entries: Vec<LeafEntry>, fanout: usize) -> Self {
        let fanout = fanout.max(2);
        if entries.is_empty() {
            return Self::new(fanout);
        }
        let mut tree = RTree {
            nodes: Vec::new(),
            root: 0,
            fanout,
            len: entries.len(),
        };
        // Pack leaves: floor-first, then STR tiles in x, then runs in y.
        let leaf_groups = str_tiles(&mut entries, fanout, |e| &e.mbr);
        let mut level: Vec<usize> = leaf_groups
            .into_iter()
            .map(|group| {
                let mbr = union_of(group.iter().map(|e| &e.mbr));
                tree.push(Node {
                    mbr,
                    kind: NodeKind::Leaf(group),
                })
            })
            .collect();
        while level.len() > 1 {
            let mut items: Vec<(usize, Mbr3)> =
                level.iter().map(|&i| (i, tree.nodes[i].mbr)).collect();
            let groups = str_tiles(&mut items, fanout, |x| &x.1);
            level = groups
                .into_iter()
                .map(|group| {
                    let mbr = union_of(group.iter().map(|x| &x.1));
                    let children = group.into_iter().map(|x| x.0).collect();
                    tree.push(Node {
                        mbr,
                        kind: NodeKind::Inner(children),
                    })
                })
                .collect();
        }
        tree.root = level[0];
        tree
    }

    fn push(&mut self, n: Node) -> usize {
        self.nodes.push(n);
        self.nodes.len() - 1
    }

    /// Number of unit entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the tree holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut cur = self.root;
        loop {
            match &self.nodes[cur].kind {
                NodeKind::Leaf(_) => return h,
                NodeKind::Inner(c) => {
                    h += 1;
                    cur = c[0];
                }
            }
        }
    }

    /// Number of allocated tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Root MBR (sentinel when empty).
    pub fn root_mbr(&self) -> Mbr3 {
        self.nodes[self.root].mbr
    }

    // ---- search -----------------------------------------------------------

    /// `RangeSearch` over the tree (Algorithm 4's tree walk): visits every
    /// leaf entry whose `metric` is at most `r`, pruning subtrees whose
    /// node MBR metric exceeds `r`. The metric is injected so callers can
    /// search by the skeleton distance (Eq. 10) or plain Euclidean
    /// distance (the paper's "withoutSkeleton" ablation).
    pub fn range_search<M, V>(&self, metric: M, r: f64, mut visit: V) -> SearchStats
    where
        M: Fn(&Mbr3) -> f64,
        V: FnMut(&LeafEntry),
    {
        let mut stats = SearchStats::default();
        if self.len == 0 {
            return stats;
        }
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            stats.nodes_visited += 1;
            match &self.nodes[idx].kind {
                NodeKind::Leaf(entries) => {
                    for e in entries {
                        stats.entries_checked += 1;
                        if metric(&e.mbr) <= r {
                            visit(e);
                        }
                    }
                }
                NodeKind::Inner(children) => {
                    for &c in children {
                        if metric(&self.nodes[c].mbr) <= r {
                            stack.push(c);
                        }
                    }
                }
            }
        }
        stats
    }

    // ---- insertion ----------------------------------------------------------

    /// Inserts one entry (dynamic maintenance, §III-C.1 *Insertion*).
    pub fn insert(&mut self, entry: LeafEntry) {
        if let Some(sibling) = self.insert_rec(self.root, entry) {
            let old_root = self.root;
            let mbr = self.nodes[old_root].mbr.union(&self.nodes[sibling].mbr);
            self.root = self.push(Node {
                mbr,
                kind: NodeKind::Inner(vec![old_root, sibling]),
            });
        }
        self.len += 1;
    }

    fn insert_rec(&mut self, idx: usize, entry: LeafEntry) -> Option<usize> {
        let split = match &self.nodes[idx].kind {
            NodeKind::Leaf(_) => {
                if let NodeKind::Leaf(entries) = &mut self.nodes[idx].kind {
                    entries.push(entry);
                }
                (self.leaf_len(idx) > self.fanout).then(|| self.split_leaf(idx))
            }
            NodeKind::Inner(children) => {
                let child = choose_child(&self.nodes, children, &entry.mbr);
                let new_sibling = self.insert_rec(child, entry);
                if let Some(sib) = new_sibling {
                    if let NodeKind::Inner(children) = &mut self.nodes[idx].kind {
                        children.push(sib);
                    }
                    (self.inner_len(idx) > self.fanout).then(|| self.split_inner(idx))
                } else {
                    None
                }
            }
        };
        self.recompute_mbr(idx);
        if let Some(sib) = split {
            self.recompute_mbr(sib);
        }
        split
    }

    fn leaf_len(&self, idx: usize) -> usize {
        match &self.nodes[idx].kind {
            NodeKind::Leaf(e) => e.len(),
            NodeKind::Inner(_) => 0,
        }
    }

    fn inner_len(&self, idx: usize) -> usize {
        match &self.nodes[idx].kind {
            NodeKind::Inner(c) => c.len(),
            NodeKind::Leaf(_) => 0,
        }
    }

    fn split_leaf(&mut self, idx: usize) -> usize {
        let NodeKind::Leaf(mut entries) =
            std::mem::replace(&mut self.nodes[idx].kind, NodeKind::Leaf(Vec::new()))
        else {
            unreachable!("split_leaf on inner node")
        };
        sort_by_widest_axis(&mut entries, |e| &e.mbr);
        let right = entries.split_off(entries.len() / 2);
        self.nodes[idx].kind = NodeKind::Leaf(entries);
        self.recompute_mbr(idx);
        let mbr = union_of(right.iter().map(|e| &e.mbr));
        self.push(Node {
            mbr,
            kind: NodeKind::Leaf(right),
        })
    }

    fn split_inner(&mut self, idx: usize) -> usize {
        let NodeKind::Inner(children) =
            std::mem::replace(&mut self.nodes[idx].kind, NodeKind::Inner(Vec::new()))
        else {
            unreachable!("split_inner on leaf node")
        };
        let mut items: Vec<(usize, Mbr3)> = children
            .into_iter()
            .map(|c| (c, self.nodes[c].mbr))
            .collect();
        sort_by_widest_axis(&mut items, |x| &x.1);
        let right = items.split_off(items.len() / 2);
        self.nodes[idx].kind = NodeKind::Inner(items.into_iter().map(|x| x.0).collect());
        self.recompute_mbr(idx);
        let mbr = union_of(right.iter().map(|x| &x.1));
        let right_children = right.into_iter().map(|x| x.0).collect();
        self.push(Node {
            mbr,
            kind: NodeKind::Inner(right_children),
        })
    }

    // ---- removal -------------------------------------------------------------

    /// Removes one entry by unit id, guided by its MBR. Returns whether it
    /// was found.
    pub fn remove(&mut self, unit: UnitId, mbr: &Mbr3) -> bool {
        let found = self.remove_rec(self.root, unit, mbr);
        if found {
            self.len -= 1;
            // Collapse a chain of single-child inner roots.
            while let NodeKind::Inner(c) = &self.nodes[self.root].kind {
                if c.len() == 1 {
                    self.root = c[0];
                } else {
                    break;
                }
            }
            if self.len == 0 {
                // Reset to a single empty leaf.
                self.nodes[self.root].kind = NodeKind::Leaf(Vec::new());
                self.nodes[self.root].mbr = Mbr3::empty_sentinel();
            }
        }
        found
    }

    fn remove_rec(&mut self, idx: usize, unit: UnitId, mbr: &Mbr3) -> bool {
        let found = match &self.nodes[idx].kind {
            NodeKind::Leaf(entries) => {
                let pos = entries.iter().position(|e| e.unit == unit);
                match pos {
                    Some(p) => {
                        if let NodeKind::Leaf(entries) = &mut self.nodes[idx].kind {
                            entries.swap_remove(p);
                        }
                        true
                    }
                    None => false,
                }
            }
            NodeKind::Inner(children) => {
                let candidates: Vec<usize> = children
                    .iter()
                    .copied()
                    .filter(|&c| self.nodes[c].mbr.intersects(mbr))
                    .collect();
                let mut hit = false;
                for c in candidates {
                    if self.remove_rec(c, unit, mbr) {
                        hit = true;
                        // Prune emptied children.
                        let empty = match &self.nodes[c].kind {
                            NodeKind::Leaf(e) => e.is_empty(),
                            NodeKind::Inner(cc) => cc.is_empty(),
                        };
                        if empty {
                            if let NodeKind::Inner(children) = &mut self.nodes[idx].kind {
                                children.retain(|&x| x != c);
                            }
                        }
                        break;
                    }
                }
                hit
            }
        };
        if found {
            self.recompute_mbr(idx);
        }
        found
    }

    fn recompute_mbr(&mut self, idx: usize) {
        let mbr = match &self.nodes[idx].kind {
            NodeKind::Leaf(entries) => union_of(entries.iter().map(|e| &e.mbr)),
            NodeKind::Inner(children) => union_of(children.iter().map(|&c| &self.nodes[c].mbr)),
        };
        self.nodes[idx].mbr = mbr;
    }

    // ---- invariants (test support) --------------------------------------------

    /// Validates structural invariants: MBR containment, fanout caps, and
    /// that exactly `len` entries are reachable. Panics on violation.
    pub fn validate(&self) {
        let mut count = 0;
        self.validate_rec(self.root, &mut count);
        assert_eq!(count, self.len, "reachable entries == len");
    }

    fn validate_rec(&self, idx: usize, count: &mut usize) {
        let node = &self.nodes[idx];
        match &node.kind {
            NodeKind::Leaf(entries) => {
                assert!(entries.len() <= self.fanout, "leaf fanout");
                for e in entries {
                    assert!(
                        node.mbr.rect.contains_rect(&e.mbr.rect),
                        "leaf MBR containment"
                    );
                    *count += 1;
                }
            }
            NodeKind::Inner(children) => {
                assert!(children.len() <= self.fanout, "inner fanout");
                assert!(!children.is_empty(), "inner node non-empty");
                for &c in children {
                    assert!(
                        node.mbr.rect.contains_rect(&self.nodes[c].mbr.rect),
                        "inner MBR containment"
                    );
                    self.validate_rec(c, count);
                }
            }
        }
    }
}

/// Least-volume-enlargement child choice (ties: smaller volume).
fn choose_child(nodes: &[Node], children: &[usize], mbr: &Mbr3) -> usize {
    let mut best = children[0];
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for &c in children {
        let cur = nodes[c].mbr;
        let grown = cur.union(mbr);
        let key = (
            grown.build_volume() - cur.build_volume(),
            cur.build_volume(),
        );
        if key < best_key {
            best_key = key;
            best = c;
        }
    }
    best
}

fn union_of<'a>(mbrs: impl Iterator<Item = &'a Mbr3>) -> Mbr3 {
    let mut acc = Mbr3::empty_sentinel();
    for m in mbrs {
        acc = acc.union(m);
    }
    acc
}

/// Sorts items by centre along the axis with the widest centre spread
/// (z, i.e. floor, included — multi-floor separation first is what the
/// paper's floor-aware layout wants).
fn sort_by_widest_axis<T>(items: &mut [T], mbr_of: impl Fn(&T) -> &Mbr3) {
    const EMPTY: (f64, f64) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut sx, mut sy, mut sz) = (EMPTY, EMPTY, EMPTY);
    for it in items.iter() {
        let m = mbr_of(it);
        let c = m.rect.center();
        let z = (m.z_lo + m.z_hi) / 2.0;
        sx = (sx.0.min(c.x), sx.1.max(c.x));
        sy = (sy.0.min(c.y), sy.1.max(c.y));
        sz = (sz.0.min(z), sz.1.max(z));
    }
    let spread = |s: (f64, f64)| s.1 - s.0;
    let (dx, dy, dz) = (spread(sx), spread(sy), spread(sz));
    if dz >= dx && dz >= dy {
        items.sort_by_key(|it| {
            let m = mbr_of(it);
            OrdF64((m.z_lo + m.z_hi) / 2.0)
        });
    } else if dx >= dy {
        items.sort_by_key(|it| OrdF64(mbr_of(it).rect.center().x));
    } else {
        items.sort_by_key(|it| OrdF64(mbr_of(it).rect.center().y));
    }
}

/// Groups items into STR tiles of at most `fanout` items: sort by floor
/// (z), slice into floor runs, tile each run by x slabs then y runs.
fn str_tiles<T>(
    items: &mut Vec<T>,
    fanout: usize,
    mbr_of: impl Fn(&T) -> &Mbr3 + Copy,
) -> Vec<Vec<T>> {
    let n = items.len();
    if n <= fanout {
        return vec![std::mem::take(items)];
    }
    // Sort by (floor, x); slice into x-slabs of ~sqrt(n/fanout) per floor
    // run, then chunk each slab by y.
    items.sort_by(|a, b| {
        let (ma, mb) = (mbr_of(a), mbr_of(b));
        ma.floor_lo
            .cmp(&mb.floor_lo)
            .then(OrdF64(ma.rect.center().x).cmp(&OrdF64(mb.rect.center().x)))
    });
    let leaf_count = n.div_ceil(fanout);
    let slab_count = (leaf_count as f64).sqrt().ceil() as usize;
    let slab_size = n.div_ceil(slab_count);
    let mut out = Vec::with_capacity(leaf_count);
    let mut rest = std::mem::take(items);
    while !rest.is_empty() {
        let take = slab_size.min(rest.len());
        let mut slab: Vec<T> = rest.drain(..take).collect();
        slab.sort_by_key(|it| OrdF64(mbr_of(it).rect.center().y));
        while !slab.is_empty() {
            let take = fanout.min(slab.len());
            out.push(slab.drain(..take).collect());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::{Point3, Rect2};

    fn entry(i: u32, x: f64, y: f64, floor: u16) -> LeafEntry {
        LeafEntry {
            unit: UnitId(i),
            mbr: Mbr3::planar(
                Rect2::from_bounds(x, y, x + 5.0, y + 5.0),
                floor,
                floor as f64 * 4.0,
            ),
        }
    }

    fn grid_entries(nx: u32, ny: u32, floors: u16) -> Vec<LeafEntry> {
        let mut v = Vec::new();
        let mut id = 0;
        for f in 0..floors {
            for i in 0..nx {
                for j in 0..ny {
                    v.push(entry(id, i as f64 * 10.0, j as f64 * 10.0, f));
                    id += 1;
                }
            }
        }
        v
    }

    #[test]
    fn bulk_load_reaches_everything() {
        let entries = grid_entries(10, 10, 3);
        let t = RTree::bulk_load(entries.clone(), 20);
        assert_eq!(t.len(), 300);
        t.validate();
        assert!(t.height() >= 2);
        let q = Point3::new(0.0, 0.0, 0.0);
        let mut seen = Vec::new();
        t.range_search(|m| m.min_dist(q), f64::INFINITY, |e| seen.push(e.unit));
        assert_eq!(seen.len(), 300);
    }

    #[test]
    fn range_search_prunes_far_nodes() {
        let entries = grid_entries(10, 10, 3);
        let t = RTree::bulk_load(entries, 20);
        let q = Point3::new(2.5, 2.5, 0.0);
        let mut seen = Vec::new();
        let stats = t.range_search(|m| m.min_dist(q), 12.0, |e| seen.push(e.unit));
        // Brute-force oracle.
        let oracle = grid_entries(10, 10, 3)
            .into_iter()
            .filter(|e| e.mbr.min_dist(q) <= 12.0)
            .count();
        assert_eq!(seen.len(), oracle);
        assert!(oracle > 0);
        assert!(stats.nodes_visited < t.node_count(), "pruning happened");
    }

    #[test]
    fn incremental_insert_matches_bulk_semantics() {
        let entries = grid_entries(8, 8, 2);
        let mut t = RTree::new(8);
        for e in &entries {
            t.insert(*e);
        }
        assert_eq!(t.len(), entries.len());
        t.validate();
        let q = Point3::new(35.0, 35.0, 4.0);
        let mut a = Vec::new();
        t.range_search(|m| m.min_dist(q), 15.0, |e| a.push(e.unit));
        let mut oracle: Vec<UnitId> = entries
            .iter()
            .filter(|e| e.mbr.min_dist(q) <= 15.0)
            .map(|e| e.unit)
            .collect();
        a.sort();
        oracle.sort();
        assert_eq!(a, oracle);
    }

    #[test]
    fn remove_then_search_consistent() {
        let entries = grid_entries(6, 6, 2);
        let mut t = RTree::bulk_load(entries.clone(), 6);
        for e in entries.iter().take(30) {
            assert!(t.remove(e.unit, &e.mbr), "must find {e:?}");
        }
        assert_eq!(t.len(), entries.len() - 30);
        t.validate();
        let q = Point3::new(0.0, 0.0, 0.0);
        let mut seen = Vec::new();
        t.range_search(|m| m.min_dist(q), f64::INFINITY, |e| seen.push(e.unit));
        assert_eq!(seen.len(), entries.len() - 30);
        // Removed units are gone.
        for e in entries.iter().take(30) {
            assert!(!seen.contains(&e.unit));
        }
        // Removing again fails cleanly.
        assert!(!t.remove(entries[0].unit, &entries[0].mbr));
    }

    #[test]
    fn empty_tree_behaviour() {
        let mut t = RTree::new(20);
        assert!(t.is_empty());
        let stats = t.range_search(
            |m| m.min_dist(Point3::new(0.0, 0.0, 0.0)),
            10.0,
            |_| panic!("nothing to visit"),
        );
        assert_eq!(stats.entries_checked, 0);
        assert!(!t.remove(
            UnitId(0),
            &Mbr3::planar(Rect2::from_bounds(0.0, 0.0, 1.0, 1.0), 0, 0.0)
        ));
        // Insert into empty then drain to empty again.
        let e = entry(0, 0.0, 0.0, 0);
        t.insert(e);
        assert_eq!(t.len(), 1);
        assert!(t.remove(e.unit, &e.mbr));
        assert!(t.is_empty());
        t.validate();
    }

    #[test]
    fn floors_separate_in_bulk_load() {
        // Units of different floors should rarely share a leaf.
        let entries = grid_entries(5, 5, 4);
        let t = RTree::bulk_load(entries, 25);
        t.validate();
        let q = Point3::new(25.0, 25.0, 0.0);
        // Searching exactly floor 0's plane within a planar radius should
        // check far fewer entries than the whole tree.
        let stats = t.range_search(|m| m.min_dist(q), 5.0, |_| {});
        assert!(
            stats.entries_checked <= 50,
            "checked {}",
            stats.entries_checked
        );
    }

    #[test]
    fn mixed_insert_remove_stress_keeps_invariants() {
        let mut t = RTree::new(4);
        let entries = grid_entries(7, 7, 2);
        for (i, e) in entries.iter().enumerate() {
            t.insert(*e);
            if i % 3 == 0 {
                assert!(t.remove(e.unit, &e.mbr));
            }
        }
        t.validate();
        let expected = entries
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .count();
        assert_eq!(t.len(), expected);
    }
}
