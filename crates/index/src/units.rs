//! Index units and the `h-table` (§III-A.2).
//!
//! Irregular partitions are decomposed into *index units* — regular
//! rectangles satisfying the `T_shape` aspect threshold (Algorithm 3) —
//! which become the leaf entries of the indR-tree. The `h-table` records
//! the unit → partition mapping; its reverse (partition → units) drives
//! incremental maintenance.

use idq_geom::{decompose, DecomposeConfig, Mbr3, Rect2};
use idq_model::{IndoorSpace, Partition, PartitionId};
use std::collections::HashMap;

/// Identifier of an index unit (dense arena index; tombstoned on removal).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnitId(pub u32);

impl UnitId {
    /// Arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for UnitId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "U{}", self.0)
    }
}

/// One index unit: a rectangle of one partition, positioned in 3D.
#[derive(Clone, Debug)]
pub struct IndexUnit {
    /// Identifier.
    pub id: UnitId,
    /// The partition this unit came from (the `h-table` entry).
    pub partition: PartitionId,
    /// Planar rectangle.
    pub rect: Rect2,
    /// 3D MBR (spans all floors of the partition — staircases).
    pub mbr: Mbr3,
    /// Tombstone flag.
    pub active: bool,
}

/// Arena of index units plus the h-table in both directions.
#[derive(Clone, Debug, Default)]
pub struct UnitStore {
    units: Vec<IndexUnit>,
    by_partition: HashMap<PartitionId, Vec<UnitId>>,
}

impl UnitStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decomposes `partition` into index units and registers them.
    /// Returns the new unit ids.
    pub fn add_partition(
        &mut self,
        space: &IndoorSpace,
        partition: &Partition,
        decompose_config: &DecomposeConfig,
    ) -> Vec<UnitId> {
        let rects = decompose(&partition.footprint, decompose_config);
        let z_lo = space.elevation(partition.floor_lo);
        let z_hi = space.elevation(partition.floor_hi);
        let mut ids = Vec::with_capacity(rects.len());
        for rect in rects {
            let id = UnitId(self.units.len() as u32);
            let mbr = Mbr3::spanning(rect, (partition.floor_lo, partition.floor_hi), (z_lo, z_hi));
            self.units.push(IndexUnit {
                id,
                partition: partition.id,
                rect,
                mbr,
                active: true,
            });
            ids.push(id);
        }
        self.by_partition.insert(partition.id, ids.clone());
        ids
    }

    /// Tombstones all units of `partition`, returning them.
    pub fn remove_partition(&mut self, partition: PartitionId) -> Vec<UnitId> {
        let ids = self.by_partition.remove(&partition).unwrap_or_default();
        for &u in &ids {
            self.units[u.index()].active = false;
        }
        ids
    }

    /// The unit, if it exists (tombstones included).
    #[inline]
    pub fn get(&self, u: UnitId) -> Option<&IndexUnit> {
        self.units.get(u.index())
    }

    /// The partition of a unit — the `h-table` lookup.
    #[inline]
    pub fn partition_of(&self, u: UnitId) -> Option<PartitionId> {
        self.get(u).filter(|x| x.active).map(|x| x.partition)
    }

    /// Units of a partition — the reverse `h-table`.
    pub fn units_of(&self, p: PartitionId) -> &[UnitId] {
        self.by_partition.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over active units.
    pub fn iter(&self) -> impl Iterator<Item = &IndexUnit> {
        self.units.iter().filter(|u| u.active)
    }

    /// Number of active units.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// `true` iff no active units.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of unit slots (dense domain for direct-indexed side tables).
    pub fn slots(&self) -> usize {
        self.units.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::Point2;
    use idq_model::FloorPlanBuilder;

    fn space_with_hallway() -> IndoorSpace {
        let mut b = FloorPlanBuilder::new(4.0);
        let room = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let hall = b
            .add_hallway(
                0,
                idq_geom::Polygon::from_rect(Rect2::from_bounds(0.0, 10.0, 100.0, 15.0)),
            )
            .unwrap();
        b.add_door_between(room, hall, Point2::new(5.0, 10.0))
            .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn room_is_one_unit_hallway_is_many() {
        let s = space_with_hallway();
        let mut store = UnitStore::new();
        let cfg = DecomposeConfig::default();
        let parts: Vec<_> = s.partitions().cloned().collect();
        for p in &parts {
            store.add_partition(&s, p, &cfg);
        }
        let room_units = store.units_of(parts[0].id);
        let hall_units = store.units_of(parts[1].id);
        assert_eq!(room_units.len(), 1);
        assert!(hall_units.len() > 1, "100×5 hallway must decompose");
        // h-table consistency in both directions.
        for &u in hall_units {
            assert_eq!(store.partition_of(u), Some(parts[1].id));
        }
        // Units tile the hallway footprint.
        let total: f64 = hall_units
            .iter()
            .map(|&u| store.get(u).unwrap().rect.area())
            .sum();
        assert!((total - 500.0).abs() < 1e-6);
    }

    #[test]
    fn remove_partition_tombstones_units() {
        let s = space_with_hallway();
        let mut store = UnitStore::new();
        let cfg = DecomposeConfig::default();
        let parts: Vec<_> = s.partitions().cloned().collect();
        for p in &parts {
            store.add_partition(&s, p, &cfg);
        }
        let before = store.len();
        let removed = store.remove_partition(parts[1].id);
        assert!(!removed.is_empty());
        assert_eq!(store.len(), before - removed.len());
        assert_eq!(store.partition_of(removed[0]), None);
        assert!(store.units_of(parts[1].id).is_empty());
        // Slots are preserved (ids stay dense).
        assert_eq!(store.slots(), before);
    }
}
