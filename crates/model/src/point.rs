//! Indoor positions: a planar point bound to a floor.

use crate::ids::Floor;
use idq_geom::{Point2, Point3};

/// A position inside the building: planar coordinates plus a floor index.
///
/// Query points, door positions and object instances are all
/// `IndoorPoint`s. The 3D lift (for geometric lower bounds against the
/// indR-tree) multiplies the floor index by the building's floor height.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndoorPoint {
    /// Planar position on the floor.
    pub point: Point2,
    /// Floor index.
    pub floor: Floor,
}

impl IndoorPoint {
    /// Creates an indoor position.
    #[inline]
    pub const fn new(point: Point2, floor: Floor) -> Self {
        IndoorPoint { point, floor }
    }

    /// Lifts to 3D given the floor height (metres per floor).
    #[inline]
    pub fn at_elevation(self, floor_height: f64) -> Point3 {
        self.point.at_z(self.floor as f64 * floor_height)
    }

    /// Planar Euclidean distance, *only meaningful on the same floor*.
    /// Debug-asserts the floors match.
    #[inline]
    pub fn planar_dist(self, other: IndoorPoint) -> f64 {
        debug_assert_eq!(self.floor, other.floor, "planar distance across floors");
        self.point.dist(other.point)
    }
}

impl std::fmt::Display for IndoorPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@F{}", self.point, self.floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elevation_lift() {
        let p = IndoorPoint::new(Point2::new(1.0, 2.0), 3);
        let q = p.at_elevation(4.0);
        assert_eq!(q, Point3::new(1.0, 2.0, 12.0));
    }

    #[test]
    fn planar_distance_same_floor() {
        let a = IndoorPoint::new(Point2::new(0.0, 0.0), 1);
        let b = IndoorPoint::new(Point2::new(3.0, 4.0), 1);
        assert!((a.planar_dist(b) - 5.0).abs() < 1e-12);
    }
}
