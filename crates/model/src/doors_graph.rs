//! The doors graph `G_d = (D, E)` (§II-A).
//!
//! Vertices are doors; an edge `(d_i → d_j)` via partition `P` means "pass
//! through `d_i` into `P`, walk to `d_j`, pass through `d_j` out of `P`".
//! Edge weight is the intra-partition distance between the door midpoints
//! (footnote 1 of the paper), which inside staircases includes the scaled
//! vertical drop.
//!
//! One-directional doors induce directed edges exactly as in the paper's
//! Figure 3: with `d_12` one-way out of room 12, the edges `(d_15, d_12)`
//! and `(d_12, d_11)` exist but their reverses do not.
//!
//! Following the paper's design, the graph is not a separately maintained
//! artefact: it is *derived* from the space ([`DoorsGraph::build`]) and kept
//! in sync incrementally ([`DoorsGraph::apply`]) as the de-facto topological
//! layer of the composite index — no door-to-door distances are
//! pre-computed.

use crate::ids::{DoorId, PartitionId};
use crate::space::IndoorSpace;
use crate::topology::TopologyEvent;

/// A directed, weighted edge of the doors graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DoorEdge {
    /// Destination door.
    pub to: DoorId,
    /// Walking distance between the door midpoints through `via`.
    pub weight: f64,
    /// The partition traversed by this edge.
    pub via: PartitionId,
}

/// Adjacency-list doors graph, indexed densely by [`DoorId`].
#[derive(Clone, Debug, Default)]
pub struct DoorsGraph {
    adj: Vec<Vec<DoorEdge>>,
    space_version: u64,
}

impl DoorsGraph {
    /// Builds the graph for the current state of `space`.
    pub fn build(space: &IndoorSpace) -> Self {
        let mut g = DoorsGraph {
            adj: vec![Vec::new(); space.door_slots()],
            space_version: space.version(),
        };
        let pids: Vec<PartitionId> = space.partitions().map(|p| p.id).collect();
        for pid in pids {
            g.add_partition_edges(space, pid);
        }
        g
    }

    /// Number of door slots covered (dense domain of [`DoorId`]).
    #[inline]
    pub fn door_slots(&self) -> usize {
        self.adj.len()
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Outgoing edges of a door. Empty for unknown/retired doors.
    #[inline]
    pub fn edges_from(&self, d: DoorId) -> &[DoorEdge] {
        self.adj.get(d.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The space version this graph reflects.
    #[inline]
    pub fn space_version(&self) -> u64 {
        self.space_version
    }

    /// Incrementally updates the graph after a topology event.
    ///
    /// Only the edge lists of the affected partitions are recomputed —
    /// the maintenance-cost advantage the paper claims over full distance
    /// pre-computation (§V-B.4).
    pub fn apply(&mut self, space: &IndoorSpace, event: &TopologyEvent) {
        match event {
            TopologyEvent::PartitionInserted(p) => {
                self.grow(space);
                self.rebuild_partition(space, *p);
            }
            TopologyEvent::PartitionRemoved(p) => {
                self.remove_partition_edges(*p);
            }
            TopologyEvent::DoorInserted(d)
            | TopologyEvent::DoorRemoved(d)
            | TopologyEvent::DoorStateChanged(d)
            | TopologyEvent::DoorRetargeted(d) => {
                self.grow(space);
                // Rebuild both partitions the door touches (tombstoned doors
                // still record them).
                if let Ok(door) = space.door_raw(*d) {
                    for pid in door.partitions {
                        self.rebuild_partition(space, pid);
                    }
                }
            }
            TopologyEvent::PartitionSplit { old, new } => {
                self.grow(space);
                self.remove_partition_edges(*old);
                for pid in new {
                    self.rebuild_partition(space, *pid);
                }
            }
            TopologyEvent::PartitionsMerged { old, new } => {
                self.grow(space);
                for pid in old {
                    self.remove_partition_edges(*pid);
                }
                self.rebuild_partition(space, *new);
            }
        }
        self.space_version = space.version();
    }

    /// Recomputes every edge routed through `pid`.
    pub fn rebuild_partition(&mut self, space: &IndoorSpace, pid: PartitionId) {
        self.remove_partition_edges(pid);
        if space.partition(pid).is_ok() {
            self.add_partition_edges(space, pid);
        }
    }

    fn grow(&mut self, space: &IndoorSpace) {
        if self.adj.len() < space.door_slots() {
            self.adj.resize(space.door_slots(), Vec::new());
        }
    }

    fn remove_partition_edges(&mut self, pid: PartitionId) {
        for edges in &mut self.adj {
            edges.retain(|e| e.via != pid);
        }
    }

    fn add_partition_edges(&mut self, space: &IndoorSpace, pid: PartitionId) {
        let Ok(doors) = space.doors_of(pid) else {
            return;
        };
        let doors = doors.to_vec();
        for &di in &doors {
            if !space.can_enter(di, pid) {
                continue;
            }
            for &dj in &doors {
                if di == dj || !space.can_leave(dj, pid) {
                    continue;
                }
                let Ok(weight) = space.door_to_door(di, dj) else {
                    continue;
                };
                self.adj[di.index()].push(DoorEdge {
                    to: dj,
                    weight,
                    via: pid,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FloorPlanBuilder;
    use idq_geom::{Point2, Rect2};

    /// Three rooms in a row: A -(d0)- B -(d1)- C, plus a one-way door d2
    /// from C directly back to A (wrapping corridor, conceptually).
    fn chain() -> (IndoorSpace, [PartitionId; 3], [DoorId; 2]) {
        let mut b = FloorPlanBuilder::new(4.0);
        let a = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let m = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let c = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        let d0 = b.add_door_between(a, m, Point2::new(10.0, 5.0)).unwrap();
        let d1 = b.add_door_between(m, c, Point2::new(20.0, 5.0)).unwrap();
        (b.finish().unwrap(), [a, m, c], [d0, d1])
    }

    #[test]
    fn chain_edges_and_weights() {
        let (s, [_, m, _], [d0, d1]) = chain();
        let g = DoorsGraph::build(&s);
        // d0 → d1 via the middle room, weight 10.
        let e: Vec<_> = g.edges_from(d0).to_vec();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].to, d1);
        assert_eq!(e[0].via, m);
        assert!((e[0].weight - 10.0).abs() < 1e-9);
        // Symmetric direction exists too.
        assert_eq!(g.edges_from(d1).len(), 1);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn one_way_door_induces_directed_edges() {
        // Figure 3(b) of the paper in miniature: room with an exit-only
        // door. Entering the room must use the bidirectional door.
        let mut b = FloorPlanBuilder::new(4.0);
        let room = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let hall = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let d_in = b
            .add_door_between(room, hall, Point2::new(10.0, 2.0))
            .unwrap();
        let d_out = b
            .add_one_way_door(room, hall, Point2::new(10.0, 8.0))
            .unwrap();
        let s = b.finish().unwrap();
        let g = DoorsGraph::build(&s);
        // Via room: d_in → d_out exists (enter room by d_in, leave by d_out);
        // d_out → d_in via room must NOT exist (cannot enter room by d_out).
        assert!(g
            .edges_from(d_in)
            .iter()
            .any(|e| e.to == d_out && e.via == room));
        assert!(!g
            .edges_from(d_out)
            .iter()
            .any(|e| e.to == d_in && e.via == room));
        // Via hall: d_out → d_in exists (enter hall by d_out, leave into room
        // by d_in); d_in → d_out via hall does not (cannot leave hall
        // through the one-way door).
        assert!(g
            .edges_from(d_out)
            .iter()
            .any(|e| e.to == d_in && e.via == hall));
        assert!(!g
            .edges_from(d_in)
            .iter()
            .any(|e| e.to == d_out && e.via == hall));
    }

    #[test]
    fn closed_door_drops_edges_incrementally() {
        let (mut s, _, [d0, d1]) = chain();
        let mut g = DoorsGraph::build(&s);
        assert_eq!(g.edge_count(), 2);
        let ev = s.close_door(d1).unwrap();
        g.apply(&s, &ev);
        assert_eq!(g.edge_count(), 0);
        let ev = s.open_door(d1).unwrap();
        g.apply(&s, &ev);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edges_from(d0).len(), 1);
    }

    #[test]
    fn incremental_matches_full_rebuild_after_partition_delete() {
        let (mut s, [_, m, _], _) = chain();
        let mut g = DoorsGraph::build(&s);
        let evs = s.delete_partition(m).unwrap();
        for ev in &evs {
            g.apply(&s, ev);
        }
        let fresh = DoorsGraph::build(&s);
        assert_eq!(g.edge_count(), fresh.edge_count());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn staircase_edges_cost_vertical_walk() {
        let mut b = FloorPlanBuilder::new(4.0);
        let h0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 5.0))
            .unwrap();
        let h1 = b
            .add_room(1, Rect2::from_bounds(0.0, 0.0, 10.0, 5.0))
            .unwrap();
        let st = b
            .add_staircase((0, 1), Rect2::from_bounds(10.0, 0.0, 14.0, 5.0))
            .unwrap();
        let e0 = b
            .add_staircase_entrance(st, h0, 0, Point2::new(10.0, 2.5))
            .unwrap();
        let e1 = b
            .add_staircase_entrance(st, h1, 1, Point2::new(10.0, 2.5))
            .unwrap();
        let s = b.finish().unwrap();
        let g = DoorsGraph::build(&s);
        let e: Vec<_> = g.edges_from(e0).iter().filter(|e| e.via == st).collect();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].to, e1);
        // Same planar point, one floor of 4 m at walk factor 2.
        assert!((e[0].weight - 8.0).abs() < 1e-9);
    }
}
