//! Durable wire codec for the indoor space and topology specs.
//!
//! Serialization lives with the types it serializes (this crate owns the
//! space), on top of the primitives in `idq_storage::codec`. The format is
//! full-fidelity: raw arenas with tombstones, door-list order, the topology
//! version counter, and the floor count — everything a recovered space
//! needs to behave identically to the original, including the parts that
//! are history-dependent rather than derivable from active entities
//! (`num_floors` never shrinks; cached geometry is recomputed).
//!
//! All floating-point values travel as IEEE-754 bit patterns, so a decoded
//! space is *bit-identical* in every coordinate — the property the
//! engine's recovery-equivalence digests assert.

use crate::door::{Direction, Door, DoorKind};
use crate::ids::{DoorId, Floor, PartitionId};
use crate::partition::{Partition, PartitionKind};
use crate::space::IndoorSpace;
use crate::topology::{DoorSpec, PartitionSpec, SplitLine};
use idq_geom::{Point2, Polygon};
use idq_storage::codec::{put_bool, put_f64, put_str, put_u32, put_u64, put_u8, put_usize, Cursor};
use idq_storage::StorageError;

// ---- geometry primitives --------------------------------------------------

pub fn put_point(buf: &mut Vec<u8>, p: Point2) {
    put_f64(buf, p.x);
    put_f64(buf, p.y);
}

pub fn take_point(c: &mut Cursor<'_>) -> Result<Point2, StorageError> {
    let x = c.take_f64("point.x")?;
    let y = c.take_f64("point.y")?;
    Ok(Point2::new(x, y))
}

/// Vertices are stored in the canonical (counter-clockwise) order
/// [`Polygon::vertices`] exposes, so `Polygon::new` reconstructs the exact
/// vertex sequence; the bounding box and rectangle flag are recomputed
/// deterministically from the same bits.
pub fn put_polygon(buf: &mut Vec<u8>, poly: &Polygon) {
    put_usize(buf, poly.vertices().len());
    for &v in poly.vertices() {
        put_point(buf, v);
    }
}

pub fn take_polygon(c: &mut Cursor<'_>) -> Result<Polygon, StorageError> {
    let n = c.take_len("polygon vertex count")?;
    let mut verts = Vec::with_capacity(n);
    for _ in 0..n {
        verts.push(take_point(c)?);
    }
    let at = c.pos();
    Polygon::new(verts).map_err(|_| StorageError::Decode {
        what: "polygon",
        offset: at,
    })
}

pub fn put_floor(buf: &mut Vec<u8>, f: Floor) {
    put_u32(buf, f as u32);
}

pub fn take_floor(c: &mut Cursor<'_>) -> Result<Floor, StorageError> {
    let v = c.take_u32("floor")?;
    Floor::try_from(v).map_err(|_| StorageError::Decode {
        what: "floor",
        offset: c.pos(),
    })
}

fn put_opt_str(buf: &mut Vec<u8>, s: &Option<String>) {
    put_bool(buf, s.is_some());
    if let Some(s) = s {
        put_str(buf, s);
    }
}

fn take_opt_str(c: &mut Cursor<'_>, what: &'static str) -> Result<Option<String>, StorageError> {
    if c.take_bool(what)? {
        Ok(Some(c.take_str(what)?))
    } else {
        Ok(None)
    }
}

// ---- enums ----------------------------------------------------------------

pub fn put_direction(buf: &mut Vec<u8>, d: Direction) {
    put_u8(
        buf,
        match d {
            Direction::Bidirectional => 0,
            Direction::OneWay => 1,
        },
    );
}

pub fn take_direction(c: &mut Cursor<'_>) -> Result<Direction, StorageError> {
    match c.take_u8("direction")? {
        0 => Ok(Direction::Bidirectional),
        1 => Ok(Direction::OneWay),
        _ => Err(StorageError::Decode {
            what: "direction",
            offset: c.pos() - 1,
        }),
    }
}

fn put_partition_kind(buf: &mut Vec<u8>, k: PartitionKind) {
    put_u8(
        buf,
        match k {
            PartitionKind::Room => 0,
            PartitionKind::Hallway => 1,
            PartitionKind::Staircase => 2,
        },
    );
}

fn take_partition_kind(c: &mut Cursor<'_>) -> Result<PartitionKind, StorageError> {
    match c.take_u8("partition kind")? {
        0 => Ok(PartitionKind::Room),
        1 => Ok(PartitionKind::Hallway),
        2 => Ok(PartitionKind::Staircase),
        _ => Err(StorageError::Decode {
            what: "partition kind",
            offset: c.pos() - 1,
        }),
    }
}

fn put_door_kind(buf: &mut Vec<u8>, k: DoorKind) {
    put_u8(
        buf,
        match k {
            DoorKind::Interior => 0,
            DoorKind::StaircaseEntrance => 1,
        },
    );
}

fn take_door_kind(c: &mut Cursor<'_>) -> Result<DoorKind, StorageError> {
    match c.take_u8("door kind")? {
        0 => Ok(DoorKind::Interior),
        1 => Ok(DoorKind::StaircaseEntrance),
        _ => Err(StorageError::Decode {
            what: "door kind",
            offset: c.pos() - 1,
        }),
    }
}

pub fn put_split_line(buf: &mut Vec<u8>, line: SplitLine) {
    match line {
        SplitLine::AtX(x) => {
            put_u8(buf, 0);
            put_f64(buf, x);
        }
        SplitLine::AtY(y) => {
            put_u8(buf, 1);
            put_f64(buf, y);
        }
    }
}

pub fn take_split_line(c: &mut Cursor<'_>) -> Result<SplitLine, StorageError> {
    match c.take_u8("split line")? {
        0 => Ok(SplitLine::AtX(c.take_f64("split line x")?)),
        1 => Ok(SplitLine::AtY(c.take_f64("split line y")?)),
        _ => Err(StorageError::Decode {
            what: "split line",
            offset: c.pos() - 1,
        }),
    }
}

// ---- topology specs -------------------------------------------------------

pub fn put_partition_spec(buf: &mut Vec<u8>, spec: &PartitionSpec) {
    put_partition_kind(buf, spec.kind);
    put_opt_str(buf, &spec.name);
    put_floor(buf, spec.floor);
    put_polygon(buf, &spec.footprint);
    put_usize(buf, spec.doors.len());
    for d in &spec.doors {
        put_point(buf, d.position);
        put_u32(buf, d.other.0);
        put_direction(buf, d.direction);
    }
}

pub fn take_partition_spec(c: &mut Cursor<'_>) -> Result<PartitionSpec, StorageError> {
    let kind = take_partition_kind(c)?;
    let name = take_opt_str(c, "partition spec name")?;
    let floor = take_floor(c)?;
    let footprint = take_polygon(c)?;
    let n = c.take_len("partition spec door count")?;
    let mut doors = Vec::with_capacity(n);
    for _ in 0..n {
        let position = take_point(c)?;
        let other = PartitionId(c.take_u32("door spec partition")?);
        let direction = take_direction(c)?;
        doors.push(DoorSpec {
            position,
            other,
            direction,
        });
    }
    Ok(PartitionSpec {
        kind,
        name,
        floor,
        footprint,
        doors,
    })
}

// ---- arenas ---------------------------------------------------------------

fn put_partition(buf: &mut Vec<u8>, p: &Partition) {
    put_u32(buf, p.id.0);
    put_partition_kind(buf, p.kind);
    put_opt_str(buf, &p.name);
    put_floor(buf, p.floor_lo);
    put_floor(buf, p.floor_hi);
    put_polygon(buf, &p.footprint);
    put_usize(buf, p.doors.len());
    for d in &p.doors {
        put_u32(buf, d.0);
    }
    put_bool(buf, p.active);
}

fn take_partition(c: &mut Cursor<'_>) -> Result<Partition, StorageError> {
    let id = PartitionId(c.take_u32("partition id")?);
    let kind = take_partition_kind(c)?;
    let name = take_opt_str(c, "partition name")?;
    let floor_lo = take_floor(c)?;
    let floor_hi = take_floor(c)?;
    let footprint = take_polygon(c)?;
    let n = c.take_len("partition door count")?;
    let mut doors = Vec::with_capacity(n);
    for _ in 0..n {
        doors.push(DoorId(c.take_u32("partition door id")?));
    }
    let active = c.take_bool("partition active")?;
    let bbox = footprint.bbox();
    let is_rect = footprint.as_rect().is_some();
    Ok(Partition {
        id,
        kind,
        name,
        floor_lo,
        floor_hi,
        footprint,
        bbox,
        is_rect,
        doors,
        active,
    })
}

fn put_door(buf: &mut Vec<u8>, d: &Door) {
    put_u32(buf, d.id.0);
    put_point(buf, d.position);
    put_floor(buf, d.floor);
    put_u32(buf, d.partitions[0].0);
    put_u32(buf, d.partitions[1].0);
    put_direction(buf, d.direction);
    put_door_kind(buf, d.kind);
    put_bool(buf, d.open);
    put_bool(buf, d.active);
}

fn take_door(c: &mut Cursor<'_>) -> Result<Door, StorageError> {
    let id = DoorId(c.take_u32("door id")?);
    let position = take_point(c)?;
    let floor = take_floor(c)?;
    let partitions = [
        PartitionId(c.take_u32("door partition a")?),
        PartitionId(c.take_u32("door partition b")?),
    ];
    let direction = take_direction(c)?;
    let kind = take_door_kind(c)?;
    let open = c.take_bool("door open")?;
    let active = c.take_bool("door active")?;
    Ok(Door {
        id,
        position,
        floor,
        partitions,
        direction,
        kind,
        open,
        active,
    })
}

// ---- the space ------------------------------------------------------------

/// Serialize the full space: raw arenas (tombstones included, id order),
/// model constants, the mutation-version counter, and the floor count.
pub fn put_space(buf: &mut Vec<u8>, space: &IndoorSpace) {
    put_f64(buf, space.floor_height());
    put_f64(buf, space.stair_walk_factor());
    put_usize(buf, space.num_floors());
    put_u64(buf, space.version());
    let partitions = space.raw_partitions();
    put_usize(buf, partitions.len());
    for p in partitions {
        put_partition(buf, p);
    }
    let doors = space.raw_doors();
    put_usize(buf, doors.len());
    for d in doors {
        put_door(buf, d);
    }
}

/// Decode a space serialized by [`put_space`].
pub fn take_space(c: &mut Cursor<'_>) -> Result<IndoorSpace, StorageError> {
    let floor_height = c.take_f64("space floor height")?;
    let stair_walk_factor = c.take_f64("space stair walk factor")?;
    let num_floors = c.take_usize("space floor count")?;
    let version = c.take_u64("space version")?;
    let np = c.take_len("space partition count")?;
    let mut partitions = Vec::with_capacity(np);
    for i in 0..np {
        let p = take_partition(c)?;
        if p.id.index() != i {
            return Err(StorageError::Decode {
                what: "partition arena order",
                offset: c.pos(),
            });
        }
        partitions.push(p);
    }
    let nd = c.take_len("space door count")?;
    let mut doors = Vec::with_capacity(nd);
    for i in 0..nd {
        let d = take_door(c)?;
        if d.id.index() != i {
            return Err(StorageError::Decode {
                what: "door arena order",
                offset: c.pos(),
            });
        }
        doors.push(d);
    }
    Ok(IndoorSpace::from_wire_parts(
        partitions,
        doors,
        floor_height,
        stair_walk_factor,
        num_floors,
        version,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FloorPlanBuilder;
    use crate::point::IndoorPoint;
    use idq_geom::Rect2;

    fn building() -> IndoorSpace {
        let mut b = FloorPlanBuilder::new(4.0);
        let a = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let c = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        b.add_door_between(a, c, Point2::new(10.0, 5.0)).unwrap();
        let up = b
            .add_room(1, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let stair = b
            .add_staircase((0, 1), Rect2::from_bounds(8.0, 8.0, 10.0, 10.0))
            .unwrap();
        b.add_staircase_entrance(stair, a, 0, Point2::new(9.0, 8.0))
            .unwrap();
        b.add_staircase_entrance(stair, up, 1, Point2::new(9.0, 9.0))
            .unwrap();
        b.finish().unwrap()
    }

    fn round_trip(space: &IndoorSpace) -> IndoorSpace {
        let mut buf = Vec::new();
        put_space(&mut buf, space);
        let mut c = Cursor::new(&buf);
        let out = take_space(&mut c).unwrap();
        c.finish("space").unwrap();
        out
    }

    fn assert_space_identical(a: &IndoorSpace, b: &IndoorSpace) {
        assert_eq!(a.version(), b.version());
        assert_eq!(a.num_floors(), b.num_floors());
        assert_eq!(a.partition_slots(), b.partition_slots());
        assert_eq!(a.door_slots(), b.door_slots());
        assert_eq!(a.floor_height().to_bits(), b.floor_height().to_bits());
        for i in 0..a.partition_slots() {
            let (pa, pb) = (
                a.partition_raw(PartitionId(i as u32)).unwrap(),
                b.partition_raw(PartitionId(i as u32)).unwrap(),
            );
            assert_eq!(pa.kind, pb.kind);
            assert_eq!(pa.name, pb.name);
            assert_eq!((pa.floor_lo, pa.floor_hi), (pb.floor_lo, pb.floor_hi));
            assert_eq!(pa.footprint, pb.footprint);
            assert_eq!(pa.bbox, pb.bbox);
            assert_eq!(pa.is_rect, pb.is_rect);
            assert_eq!(pa.doors, pb.doors);
            assert_eq!(pa.active, pb.active);
        }
        for i in 0..a.door_slots() {
            let (da, db) = (
                a.door_raw(DoorId(i as u32)).unwrap(),
                b.door_raw(DoorId(i as u32)).unwrap(),
            );
            assert_eq!(da.position, db.position);
            assert_eq!(da.floor, db.floor);
            assert_eq!(da.partitions, db.partitions);
            assert_eq!(da.direction, db.direction);
            assert_eq!(da.kind, db.kind);
            assert_eq!((da.open, da.active), (db.open, db.active));
        }
        for f in 0..a.num_floors() as Floor {
            assert_eq!(a.partitions_on_floor(f), b.partitions_on_floor(f));
        }
    }

    #[test]
    fn space_round_trips_bit_identically() {
        let space = building();
        assert_space_identical(&space, &round_trip(&space));
    }

    #[test]
    fn tombstones_and_closed_doors_survive() {
        let mut space = building();
        let door = space.doors().next().unwrap().id;
        space.close_door(door).unwrap();
        let victim = space.partitions().last().unwrap().id;
        space.retire_partition(victim).unwrap();
        let rt = round_trip(&space);
        assert_space_identical(&space, &rt);
        assert!(rt.partition(victim).is_err());
        assert!(!rt.door(door).unwrap().open);
    }

    #[test]
    fn num_floors_survives_top_floor_retirement() {
        let mut b = FloorPlanBuilder::new(4.0);
        b.add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let top = b
            .add_room(3, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let mut space = b.finish().unwrap();
        space.retire_partition(top).unwrap();
        assert_eq!(space.num_floors(), 4);
        // Derived-only reconstruction would shrink to 1 floor; the stored
        // count keeps floor validation identical after recovery.
        assert_eq!(round_trip(&space).num_floors(), 4);
    }

    #[test]
    fn specs_and_enums_round_trip() {
        let spec = PartitionSpec {
            kind: PartitionKind::Hallway,
            name: Some("annex".to_string()),
            floor: 2,
            footprint: Polygon::from_rect(Rect2::from_bounds(0.0, 0.0, 4.0, 2.0)),
            doors: vec![DoorSpec {
                position: Point2::new(0.0, 1.0),
                other: PartitionId(7),
                direction: Direction::OneWay,
            }],
        };
        let mut buf = Vec::new();
        put_partition_spec(&mut buf, &spec);
        put_split_line(&mut buf, SplitLine::AtY(3.5));
        let mut c = Cursor::new(&buf);
        let back = take_partition_spec(&mut c).unwrap();
        assert_eq!(back.name.as_deref(), Some("annex"));
        assert_eq!(back.doors[0].other, PartitionId(7));
        assert_eq!(back.doors[0].direction, Direction::OneWay);
        assert_eq!(take_split_line(&mut c).unwrap(), SplitLine::AtY(3.5));
        c.finish("specs").unwrap();
    }

    #[test]
    fn corrupt_enum_tag_is_a_decode_error() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 9);
        let mut c = Cursor::new(&buf);
        assert!(matches!(
            take_direction(&mut c),
            Err(StorageError::Decode { .. })
        ));
    }

    #[test]
    fn recovered_space_answers_point_location() {
        let space = building();
        let rt = round_trip(&space);
        let q = IndoorPoint::new(Point2::new(3.0, 3.0), 0);
        assert_eq!(space.partition_at(q), rt.partition_at(q));
    }
}
