//! Validated fluent construction of indoor spaces.

use crate::door::{Direction, DoorKind};
use crate::error::ModelError;
use crate::ids::{DoorId, Floor, PartitionId};
use crate::partition::PartitionKind;
use crate::space::IndoorSpace;
use idq_geom::{Point2, Polygon, Rect2};

/// Builds an [`IndoorSpace`] incrementally with validation at every step.
///
/// Used directly by tests and examples, and by the synthetic building
/// generator in `idq-workloads`. Typical flow:
///
/// ```
/// use idq_model::FloorPlanBuilder;
/// use idq_geom::{Point2, Rect2};
///
/// let mut b = FloorPlanBuilder::new(4.0);
/// let kitchen = b.add_room(0, Rect2::from_bounds(0.0, 0.0, 6.0, 4.0)).unwrap();
/// let hall = b.add_room(0, Rect2::from_bounds(6.0, 0.0, 16.0, 4.0)).unwrap();
/// b.add_door_between(kitchen, hall, Point2::new(6.0, 2.0)).unwrap();
/// let space = b.finish().unwrap();
/// assert_eq!(space.partition_count(), 2);
/// ```
#[derive(Debug)]
pub struct FloorPlanBuilder {
    space: IndoorSpace,
}

impl FloorPlanBuilder {
    /// Starts a new plan with the given floor height (metres).
    pub fn new(floor_height: f64) -> Self {
        FloorPlanBuilder {
            space: IndoorSpace::new(floor_height),
        }
    }

    /// Access to the space under construction (for point queries while
    /// building).
    pub fn space(&self) -> &IndoorSpace {
        &self.space
    }

    /// Adds a rectangular room on one floor.
    pub fn add_room(&mut self, floor: Floor, rect: Rect2) -> Result<PartitionId, ModelError> {
        self.add_partition(PartitionKind::Room, None, floor, Polygon::from_rect(rect))
    }

    /// Adds a named rectangular room (names show up in diagnostics and the
    /// Figure-1 regression tests).
    pub fn add_named_room(
        &mut self,
        name: &str,
        floor: Floor,
        rect: Rect2,
    ) -> Result<PartitionId, ModelError> {
        self.add_partition(
            PartitionKind::Room,
            Some(name.to_string()),
            floor,
            Polygon::from_rect(rect),
        )
    }

    /// Adds a hallway with an arbitrary (usually rectilinear) footprint.
    pub fn add_hallway(
        &mut self,
        floor: Floor,
        footprint: Polygon,
    ) -> Result<PartitionId, ModelError> {
        self.add_partition(PartitionKind::Hallway, None, floor, footprint)
    }

    /// Adds a single-floor partition of any kind.
    pub fn add_partition(
        &mut self,
        kind: PartitionKind,
        name: Option<String>,
        floor: Floor,
        footprint: Polygon,
    ) -> Result<PartitionId, ModelError> {
        Ok(self
            .space
            .push_partition(kind, name, (floor, floor), footprint))
    }

    /// Adds a staircase spanning floors `floors.0 ..= floors.1` with the
    /// given footprint on each covered floor. Entrance doors are added
    /// separately with [`FloorPlanBuilder::add_staircase_entrance`].
    pub fn add_staircase(
        &mut self,
        floors: (Floor, Floor),
        rect: Rect2,
    ) -> Result<PartitionId, ModelError> {
        if floors.1 < floors.0 {
            return Err(ModelError::BadFootprint(
                "staircase floor interval is inverted".into(),
            ));
        }
        Ok(self.space.push_partition(
            PartitionKind::Staircase,
            None,
            floors,
            Polygon::from_rect(rect),
        ))
    }

    /// Adds a bidirectional door between two partitions at `position`.
    /// The floor is inferred as the lowest common floor.
    pub fn add_door_between(
        &mut self,
        a: PartitionId,
        b: PartitionId,
        position: Point2,
    ) -> Result<DoorId, ModelError> {
        let floor = self.common_floor(a, b)?;
        self.space.push_door(
            position,
            floor,
            [a, b],
            Direction::Bidirectional,
            DoorKind::Interior,
        )
    }

    /// Adds a one-way door passable only `from → to`.
    pub fn add_one_way_door(
        &mut self,
        from: PartitionId,
        to: PartitionId,
        position: Point2,
    ) -> Result<DoorId, ModelError> {
        let floor = self.common_floor(from, to)?;
        self.space.push_door(
            position,
            floor,
            [from, to],
            Direction::OneWay,
            DoorKind::Interior,
        )
    }

    /// Adds a staircase entrance: a door on `floor` between the staircase
    /// and a same-floor partition.
    pub fn add_staircase_entrance(
        &mut self,
        staircase: PartitionId,
        partition: PartitionId,
        floor: Floor,
        position: Point2,
    ) -> Result<DoorId, ModelError> {
        if self.space.partition(staircase)?.kind != PartitionKind::Staircase {
            return Err(ModelError::WrongKind(staircase));
        }
        self.space.push_door(
            position,
            floor,
            [staircase, partition],
            Direction::Bidirectional,
            DoorKind::StaircaseEntrance,
        )
    }

    /// Adds a door with full control over floor, direction and kind.
    #[allow(clippy::too_many_arguments)]
    pub fn add_door(
        &mut self,
        a: PartitionId,
        b: PartitionId,
        position: Point2,
        floor: Floor,
        direction: Direction,
        kind: DoorKind,
    ) -> Result<DoorId, ModelError> {
        self.space
            .push_door(position, floor, [a, b], direction, kind)
    }

    /// Finishes construction. Currently infallible beyond the per-step
    /// validation, but returns `Result` so global checks can be added
    /// without breaking the API; callers should inspect
    /// [`IndoorSpace::sealed_partitions`] / `connected_components` for
    /// well-formedness diagnostics.
    pub fn finish(self) -> Result<IndoorSpace, ModelError> {
        Ok(self.space)
    }

    fn common_floor(&self, a: PartitionId, b: PartitionId) -> Result<Floor, ModelError> {
        let pa = self.space.partition(a)?;
        let pb = self.space.partition(b)?;
        let lo = pa.floor_lo.max(pb.floor_lo);
        let hi = pa.floor_hi.min(pb.floor_hi);
        if lo > hi {
            Err(ModelError::NoCommonFloor(a, b))
        } else {
            Ok(lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::IndoorPoint;

    #[test]
    fn builds_multi_floor_building_with_staircase() {
        let mut b = FloorPlanBuilder::new(4.0);
        let hall0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 20.0, 5.0))
            .unwrap();
        let hall1 = b
            .add_room(1, Rect2::from_bounds(0.0, 0.0, 20.0, 5.0))
            .unwrap();
        let stairs = b
            .add_staircase((0, 1), Rect2::from_bounds(20.0, 0.0, 24.0, 5.0))
            .unwrap();
        let e0 = b
            .add_staircase_entrance(stairs, hall0, 0, Point2::new(20.0, 2.5))
            .unwrap();
        let e1 = b
            .add_staircase_entrance(stairs, hall1, 1, Point2::new(20.0, 2.5))
            .unwrap();
        let s = b.finish().unwrap();
        assert_eq!(s.num_floors(), 2);
        assert_eq!(s.partition_count(), 3);
        assert_eq!(s.door_count(), 2);
        assert_eq!(s.connected_components(), 1);
        // The staircase is locatable from both floors.
        assert_eq!(
            s.partition_at(IndoorPoint::new(Point2::new(22.0, 2.0), 0)),
            Some(stairs)
        );
        assert_eq!(
            s.partition_at(IndoorPoint::new(Point2::new(22.0, 2.0), 1)),
            Some(stairs)
        );
        // The entrance doors sit on different floors of the same staircase.
        assert_eq!(s.door(e0).unwrap().floor, 0);
        assert_eq!(s.door(e1).unwrap().floor, 1);
        // Walking between entrances costs planar + scaled vertical.
        let w = s.door_to_door(e0, e1).unwrap();
        assert!((w - 8.0).abs() < 1e-9, "0 planar + 4m × factor 2 = {w}");
    }

    #[test]
    fn one_way_door_directionality() {
        let mut b = FloorPlanBuilder::new(4.0);
        let secure = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let public = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let d = b
            .add_one_way_door(secure, public, Point2::new(10.0, 5.0))
            .unwrap();
        let s = b.finish().unwrap();
        assert!(s.can_pass(d, secure, public));
        assert!(!s.can_pass(d, public, secure));
    }

    #[test]
    fn staircase_entrance_requires_staircase() {
        let mut b = FloorPlanBuilder::new(4.0);
        let r1 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        assert!(matches!(
            b.add_staircase_entrance(r1, r2, 0, Point2::new(10.0, 5.0)),
            Err(ModelError::WrongKind(_))
        ));
    }

    #[test]
    fn no_common_floor_is_rejected() {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(1, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        assert_eq!(
            b.add_door_between(r0, r1, Point2::new(5.0, 5.0)),
            Err(ModelError::NoCommonFloor(r0, r1))
        );
    }

    #[test]
    fn inverted_staircase_interval_rejected() {
        let mut b = FloorPlanBuilder::new(4.0);
        assert!(b
            .add_staircase((3, 1), Rect2::from_bounds(0.0, 0.0, 4.0, 4.0))
            .is_err());
    }
}
