//! Dense integer identifiers for indoor entities.
//!
//! Partitions and doors live in arenas inside [`crate::IndoorSpace`];
//! identifiers are indices into those arenas. Deleted entities are
//! tombstoned, never reused, so an id observed once stays valid for the
//! lifetime of the space (lookups on deleted entities report inactivity
//! rather than dangling data).

/// Floor index (ground floor = 0).
pub type Floor = u16;

/// Identifier of an indoor partition (room, hallway or staircase).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub u32);

impl PartitionId {
    /// The arena index of this partition.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PartitionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of a door (or staircase entrance).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DoorId(pub u32);

impl DoorId {
    /// The arena index of this door.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DoorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(PartitionId(3));
        s.insert(PartitionId(3));
        assert_eq!(s.len(), 1);
        assert!(DoorId(1) < DoorId(2));
        assert_eq!(PartitionId(7).index(), 7);
        assert_eq!(format!("{} {}", PartitionId(1), DoorId(2)), "P1 d2");
    }
}
