//! Indoor space model: partitions, directional doors, staircases, the doors
//! graph, and temporal topology variation.
//!
//! This crate is the substrate beneath the composite index and the distance
//! machinery of the ICDE 2013 paper *Efficient Distance-Aware Query
//! Evaluation on Indoor Moving Objects*. It captures everything §II-A calls
//! the "atomic elements" of an indoor space:
//!
//! * [`Partition`] — rooms, hallways and staircases, with polygonal
//!   footprints aligned to floors;
//! * [`Door`] — connections between exactly two partitions, possibly
//!   one-directional (airport security style) and possibly closed;
//! * [`IndoorSpace`] — the building: partition/door arenas, point location,
//!   traversal predicates and intra-partition distances;
//! * [`DoorsGraph`] — the weighted graph over doors (§II-A), derived from
//!   the space rather than stored separately, with incremental maintenance;
//! * [`topology`] — temporal variation (§I, §III-C.1): opening/closing
//!   doors, inserting/deleting partitions, and splitting/merging rooms with
//!   sliding walls;
//! * [`FloorPlanBuilder`] — a validated fluent constructor used by tests,
//!   examples and the synthetic building generator.

pub mod builder;
pub mod door;
pub mod doors_graph;
pub mod error;
pub mod ids;
pub mod partition;
pub mod point;
pub mod space;
pub mod topology;
pub mod wire;

pub use builder::FloorPlanBuilder;
pub use door::{Direction, Door, DoorKind};
pub use doors_graph::{DoorEdge, DoorsGraph};
pub use error::ModelError;
pub use ids::{DoorId, Floor, PartitionId};
pub use partition::{Partition, PartitionKind};
pub use point::IndoorPoint;
pub use space::IndoorSpace;
pub use topology::{DoorSpec, PartitionSpec, SplitLine, TopologyEvent};
