//! Indoor partitions: rooms, hallways, staircases.

use crate::ids::{DoorId, Floor, PartitionId};
use idq_geom::{Point2, Polygon, Rect2};

/// Kind of indoor partition. The paper regards hallways and staircases as
/// rooms for simplicity (§II-A); we keep the kind around because staircases
/// get special treatment in the skeleton tier and in intra-partition
/// distances.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionKind {
    /// An ordinary room.
    Room,
    /// A hallway / corridor (often irregular — decomposed into index units).
    Hallway,
    /// A staircase spanning two or more floors.
    Staircase,
}

/// An indoor partition: an atomic, door-connected region of the building.
///
/// The footprint is a simple polygon in the plane; a staircase covers a
/// consecutive floor interval `[floor_lo, floor_hi]` with the same
/// footprint on each floor, everything else covers exactly one floor.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Identifier (arena index).
    pub id: PartitionId,
    /// Kind of partition.
    pub kind: PartitionKind,
    /// Optional human-readable name (used by examples and the Figure-1
    /// regression tests).
    pub name: Option<String>,
    /// Lowest floor covered (inclusive).
    pub floor_lo: Floor,
    /// Highest floor covered (inclusive). Equal to `floor_lo` for
    /// single-floor partitions.
    pub floor_hi: Floor,
    /// Planar footprint.
    pub footprint: Polygon,
    /// Cached tight bounding box of the footprint.
    pub bbox: Rect2,
    /// Cached: the footprint *is* its bounding box (axis-aligned
    /// rectangle), so containment is a bbox test — the overwhelmingly
    /// common case in real floor plans, and the hot path of per-instance
    /// point location.
    pub is_rect: bool,
    /// Doors attached to this partition (kept in sync by the space).
    pub doors: Vec<DoorId>,
    /// Tombstone flag: `false` once deleted from the topology.
    pub active: bool,
}

impl Partition {
    /// Returns `true` if this partition exists on floor `f`.
    #[inline]
    pub fn covers_floor(&self, f: Floor) -> bool {
        self.floor_lo <= f && f <= self.floor_hi
    }

    /// Returns `true` if `p` on floor `f` lies inside the partition.
    #[inline]
    pub fn contains(&self, p: Point2, f: Floor) -> bool {
        self.covers_floor(f)
            && self.bbox.contains(p)
            && (self.is_rect || self.footprint.contains(p))
    }

    /// Number of floors covered.
    #[inline]
    pub fn floor_span(&self) -> usize {
        (self.floor_hi - self.floor_lo) as usize + 1
    }

    /// Footprint area (one floor).
    #[inline]
    pub fn area(&self) -> f64 {
        self.footprint.area()
    }
}

impl std::fmt::Display for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.name {
            Some(n) => write!(f, "{}({})", self.id, n),
            None => write!(f, "{}", self.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn room() -> Partition {
        let rect = Rect2::from_bounds(0.0, 0.0, 10.0, 8.0);
        Partition {
            id: PartitionId(0),
            kind: PartitionKind::Room,
            name: Some("room 12".into()),
            floor_lo: 2,
            floor_hi: 2,
            footprint: Polygon::from_rect(rect),
            bbox: rect,
            is_rect: true,
            doors: vec![],
            active: true,
        }
    }

    #[test]
    fn floor_coverage() {
        let r = room();
        assert!(r.covers_floor(2));
        assert!(!r.covers_floor(1));
        assert_eq!(r.floor_span(), 1);
    }

    #[test]
    fn containment_respects_floor() {
        let r = room();
        assert!(r.contains(Point2::new(5.0, 5.0), 2));
        assert!(!r.contains(Point2::new(5.0, 5.0), 1));
        assert!(!r.contains(Point2::new(50.0, 5.0), 2));
    }

    #[test]
    fn staircase_spans_floors() {
        let mut s = room();
        s.kind = PartitionKind::Staircase;
        s.floor_lo = 0;
        s.floor_hi = 3;
        assert_eq!(s.floor_span(), 4);
        assert!(s.contains(Point2::new(1.0, 1.0), 0));
        assert!(s.contains(Point2::new(1.0, 1.0), 3));
    }

    #[test]
    fn display_includes_name() {
        assert_eq!(format!("{}", room()), "P0(room 12)");
    }
}
