//! Doors and staircase entrances.

use crate::ids::{DoorId, Floor, PartitionId};
use idq_geom::Point2;

/// Passage directionality of a door (§I: one-directional doors are common,
/// e.g. airport security control).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Passable both ways.
    Bidirectional,
    /// Passable only from `partitions[0]` to `partitions[1]`.
    OneWay,
}

/// What kind of connection the door is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DoorKind {
    /// An ordinary door between two same-floor partitions.
    Interior,
    /// A staircase entrance: one side is a staircase partition. The paper
    /// represents the two ends of a staircase as doors on the staircase's
    /// two ends (§II-A).
    StaircaseEntrance,
}

/// A door connecting exactly two partitions.
///
/// Distances to and from doors use the door's midpoint `position` (paper,
/// footnote 1). Doors can be temporarily closed (temporal variation,
/// §III-C.1) and are tombstoned (`active = false`) rather than removed.
#[derive(Clone, Debug)]
pub struct Door {
    /// Identifier (arena index).
    pub id: DoorId,
    /// Door midpoint in the plane.
    pub position: Point2,
    /// Floor the doorway is on.
    pub floor: Floor,
    /// The two partitions the door connects. For [`Direction::OneWay`],
    /// passage is allowed from `partitions[0]` into `partitions[1]` only.
    pub partitions: [PartitionId; 2],
    /// Directionality.
    pub direction: Direction,
    /// Interior door or staircase entrance.
    pub kind: DoorKind,
    /// Whether the door is currently open (closed doors block movement but
    /// remain in the space).
    pub open: bool,
    /// Tombstone flag: `false` once the door is removed from the topology.
    pub active: bool,
}

impl Door {
    /// Returns `true` if this door connects partition `p` (to anything).
    #[inline]
    pub fn touches(&self, p: PartitionId) -> bool {
        self.partitions[0] == p || self.partitions[1] == p
    }

    /// The partition on the other side of the door from `p`, if `p` is one
    /// of its sides.
    #[inline]
    pub fn other_side(&self, p: PartitionId) -> Option<PartitionId> {
        if self.partitions[0] == p {
            Some(self.partitions[1])
        } else if self.partitions[1] == p {
            Some(self.partitions[0])
        } else {
            None
        }
    }

    /// Whether movement from `from` to `to` through this door is allowed by
    /// the door itself (openness, liveness and directionality — the caller
    /// checks partition liveness separately).
    pub fn allows(&self, from: PartitionId, to: PartitionId) -> bool {
        if !self.open || !self.active {
            return false;
        }
        match self.direction {
            Direction::Bidirectional => {
                (self.partitions[0] == from && self.partitions[1] == to)
                    || (self.partitions[1] == from && self.partitions[0] == to)
            }
            Direction::OneWay => self.partitions[0] == from && self.partitions[1] == to,
        }
    }

    /// Whether one may pass through this door *into* `into` (from its other
    /// side).
    #[inline]
    pub fn allows_into(&self, into: PartitionId) -> bool {
        match self.other_side(into) {
            Some(from) => self.allows(from, into),
            None => false,
        }
    }

    /// Whether one may pass through this door *out of* `from` (to its other
    /// side).
    #[inline]
    pub fn allows_out_of(&self, from: PartitionId) -> bool {
        match self.other_side(from) {
            Some(to) => self.allows(from, to),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn door(direction: Direction) -> Door {
        Door {
            id: DoorId(0),
            position: Point2::new(0.0, 0.0),
            floor: 0,
            partitions: [PartitionId(1), PartitionId(2)],
            direction,
            kind: DoorKind::Interior,
            open: true,
            active: true,
        }
    }

    #[test]
    fn bidirectional_allows_both_ways() {
        let d = door(Direction::Bidirectional);
        assert!(d.allows(PartitionId(1), PartitionId(2)));
        assert!(d.allows(PartitionId(2), PartitionId(1)));
        assert!(!d.allows(PartitionId(1), PartitionId(3)));
        assert!(d.allows_into(PartitionId(1)));
        assert!(d.allows_into(PartitionId(2)));
        assert!(d.allows_out_of(PartitionId(1)));
    }

    #[test]
    fn one_way_allows_single_direction() {
        let d = door(Direction::OneWay);
        assert!(d.allows(PartitionId(1), PartitionId(2)));
        assert!(!d.allows(PartitionId(2), PartitionId(1)));
        assert!(d.allows_into(PartitionId(2)));
        assert!(!d.allows_into(PartitionId(1)));
        assert!(d.allows_out_of(PartitionId(1)));
        assert!(!d.allows_out_of(PartitionId(2)));
    }

    #[test]
    fn closed_or_inactive_blocks_everything() {
        let mut d = door(Direction::Bidirectional);
        d.open = false;
        assert!(!d.allows(PartitionId(1), PartitionId(2)));
        d.open = true;
        d.active = false;
        assert!(!d.allows(PartitionId(1), PartitionId(2)));
    }

    #[test]
    fn other_side_lookup() {
        let d = door(Direction::Bidirectional);
        assert_eq!(d.other_side(PartitionId(1)), Some(PartitionId(2)));
        assert_eq!(d.other_side(PartitionId(2)), Some(PartitionId(1)));
        assert_eq!(d.other_side(PartitionId(9)), None);
        assert!(d.touches(PartitionId(1)));
        assert!(!d.touches(PartitionId(9)));
    }
}
