//! The indoor space: arenas of partitions and doors plus the predicates the
//! distance machinery and the index build on.

use crate::door::{Direction, Door, DoorKind};
use crate::error::ModelError;
use crate::ids::{DoorId, Floor, PartitionId};
use crate::partition::{Partition, PartitionKind};
use crate::point::IndoorPoint;
use idq_geom::{Point2, Polygon};

/// Multiplier converting vertical drop into staircase walking length.
///
/// A typical stair slope of ~30° gives a walked path of about twice the
/// height difference; the paper does not specify a value, so this is a
/// documented model constant (configurable per space).
pub const DEFAULT_STAIR_WALK_FACTOR: f64 = 2.0;

/// A complete indoor space: the building every other crate operates on.
///
/// Entities are stored in arenas and addressed by dense ids; deletions
/// tombstone entries (ids are never reused) so that external structures
/// (index layers, object subregions) can hold ids safely across updates.
#[derive(Clone, Debug)]
pub struct IndoorSpace {
    partitions: Vec<Partition>,
    doors: Vec<Door>,
    floor_height: f64,
    stair_walk_factor: f64,
    /// Per-floor lists of partitions covering that floor (staircases appear
    /// on every floor they span). Maintained across topology updates.
    per_floor: Vec<Vec<PartitionId>>,
    /// Monotone counter bumped by every topology mutation; consumers cache
    /// derived structures (doors graph, index tiers) against it.
    version: u64,
}

impl IndoorSpace {
    /// Creates an empty space with the given floor height in metres.
    pub fn new(floor_height: f64) -> Self {
        IndoorSpace {
            partitions: Vec::new(),
            doors: Vec::new(),
            floor_height,
            stair_walk_factor: DEFAULT_STAIR_WALK_FACTOR,
            per_floor: Vec::new(),
            version: 0,
        }
    }

    // ---- basic accessors --------------------------------------------------

    /// Height of one floor, metres.
    #[inline]
    pub fn floor_height(&self) -> f64 {
        self.floor_height
    }

    /// Walking-length factor applied to vertical drops inside staircases.
    #[inline]
    pub fn stair_walk_factor(&self) -> f64 {
        self.stair_walk_factor
    }

    /// Sets the staircase walking-length factor (≥ 1).
    pub fn set_stair_walk_factor(&mut self, f: f64) {
        self.stair_walk_factor = f.max(1.0);
        self.version += 1;
    }

    /// Elevation (metres) of a floor index.
    #[inline]
    pub fn elevation(&self, floor: Floor) -> f64 {
        floor as f64 * self.floor_height
    }

    /// Topology version, bumped on every mutation.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of floors known to the space (highest covered floor + 1).
    #[inline]
    pub fn num_floors(&self) -> usize {
        self.per_floor.len()
    }

    /// Total number of partition slots (including tombstones).
    #[inline]
    pub fn partition_slots(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of door slots (including tombstones).
    #[inline]
    pub fn door_slots(&self) -> usize {
        self.doors.len()
    }

    /// Looks up a partition, tombstones included.
    pub fn partition_raw(&self, id: PartitionId) -> Result<&Partition, ModelError> {
        self.partitions
            .get(id.index())
            .ok_or(ModelError::UnknownPartition(id))
    }

    /// Looks up an *active* partition.
    pub fn partition(&self, id: PartitionId) -> Result<&Partition, ModelError> {
        let p = self.partition_raw(id)?;
        if p.active {
            Ok(p)
        } else {
            Err(ModelError::PartitionInactive(id))
        }
    }

    /// Looks up a door, tombstones included.
    pub fn door_raw(&self, id: DoorId) -> Result<&Door, ModelError> {
        self.doors
            .get(id.index())
            .ok_or(ModelError::UnknownDoor(id))
    }

    /// Looks up an *active* door.
    pub fn door(&self, id: DoorId) -> Result<&Door, ModelError> {
        let d = self.door_raw(id)?;
        if d.active {
            Ok(d)
        } else {
            Err(ModelError::DoorInactive(id))
        }
    }

    /// Iterates over active partitions.
    pub fn partitions(&self) -> impl Iterator<Item = &Partition> {
        self.partitions.iter().filter(|p| p.active)
    }

    /// Iterates over active doors.
    pub fn doors(&self) -> impl Iterator<Item = &Door> {
        self.doors.iter().filter(|d| d.active)
    }

    /// Number of active partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions().count()
    }

    /// Number of active doors.
    pub fn door_count(&self) -> usize {
        self.doors().count()
    }

    /// Active partitions covering `floor`.
    pub fn partitions_on_floor(&self, floor: Floor) -> &[PartitionId] {
        self.per_floor
            .get(floor as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All active staircase partitions.
    pub fn staircases(&self) -> impl Iterator<Item = &Partition> {
        self.partitions()
            .filter(|p| p.kind == PartitionKind::Staircase)
    }

    /// The doors of partition `p` — the paper's `D(p)`. Includes closed
    /// doors (they are still part of the structure); traversal predicates
    /// filter them.
    pub fn doors_of(&self, p: PartitionId) -> Result<&[DoorId], ModelError> {
        Ok(&self.partition(p)?.doors)
    }

    /// The partitions connected by door `d` — the paper's `P(d)`.
    pub fn partitions_of_door(&self, d: DoorId) -> Result<[PartitionId; 2], ModelError> {
        Ok(self.door(d)?.partitions)
    }

    // ---- point location ---------------------------------------------------

    /// The partition containing the indoor point — the paper's `P(q)`.
    ///
    /// On shared boundaries (a point exactly on a wall with a doorway) the
    /// lowest-id containing partition wins, deterministically.
    pub fn partition_at(&self, p: IndoorPoint) -> Option<PartitionId> {
        self.partitions_on_floor(p.floor)
            .iter()
            .copied()
            .filter(|&pid| {
                let part = &self.partitions[pid.index()];
                part.active && part.contains(p.point, p.floor)
            })
            .min()
    }

    /// All partitions containing the indoor point (boundary points can be
    /// in several).
    pub fn partitions_at(&self, p: IndoorPoint) -> Vec<PartitionId> {
        self.partitions_on_floor(p.floor)
            .iter()
            .copied()
            .filter(|&pid| {
                let part = &self.partitions[pid.index()];
                part.active && part.contains(p.point, p.floor)
            })
            .collect()
    }

    // ---- traversal predicates ----------------------------------------------

    /// Whether one may pass through `door` from partition `from` to
    /// partition `to` (door open, active, direction allows, partitions
    /// active).
    pub fn can_pass(&self, door: DoorId, from: PartitionId, to: PartitionId) -> bool {
        let Ok(d) = self.door(door) else { return false };
        d.allows(from, to) && self.partition(from).is_ok() && self.partition(to).is_ok()
    }

    /// Whether one may pass through `door` into partition `into`.
    pub fn can_enter(&self, door: DoorId, into: PartitionId) -> bool {
        let Ok(d) = self.door(door) else { return false };
        match d.other_side(into) {
            Some(from) => self.can_pass(door, from, into),
            None => false,
        }
    }

    /// Whether one may pass through `door` out of partition `from`.
    pub fn can_leave(&self, door: DoorId, from: PartitionId) -> bool {
        let Ok(d) = self.door(door) else { return false };
        match d.other_side(from) {
            Some(to) => self.can_pass(door, from, to),
            None => false,
        }
    }

    /// Doors through which partition `p` can be entered.
    pub fn entry_doors(&self, p: PartitionId) -> Vec<DoorId> {
        self.partition(p)
            .map(|part| {
                part.doors
                    .iter()
                    .copied()
                    .filter(|&d| self.can_enter(d, p))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Doors through which partition `p` can be left.
    pub fn exit_doors(&self, p: PartitionId) -> Vec<DoorId> {
        self.partition(p)
            .map(|part| {
                part.doors
                    .iter()
                    .copied()
                    .filter(|&d| self.can_leave(d, p))
                    .collect()
            })
            .unwrap_or_default()
    }

    // ---- intra-partition distances -----------------------------------------

    /// Distance between two positions inside one partition.
    ///
    /// Same floor: planar Euclidean (obstructed intra-partition distance is
    /// out of scope, per the paper's §II-A remark). Different floors (only
    /// meaningful inside staircases): planar distance plus the vertical drop
    /// scaled by the stair walking factor.
    pub fn intra_distance(&self, a: IndoorPoint, b: IndoorPoint) -> f64 {
        let planar = a.point.dist(b.point);
        if a.floor == b.floor {
            planar
        } else {
            let dz = (self.elevation(a.floor) - self.elevation(b.floor)).abs();
            planar + dz * self.stair_walk_factor
        }
    }

    /// Distance from an indoor point to a door through their common
    /// partition (`|q, d_q|_E` in the paper's Eq. 1).
    pub fn point_to_door(&self, p: IndoorPoint, door: DoorId) -> Result<f64, ModelError> {
        let d = self.door(door)?;
        Ok(self.intra_distance(p, IndoorPoint::new(d.position, d.floor)))
    }

    /// Door-to-door distance through a shared partition (the doors-graph
    /// edge weight, footnote 1).
    pub fn door_to_door(&self, a: DoorId, b: DoorId) -> Result<f64, ModelError> {
        let da = self.door(a)?;
        let db = self.door(b)?;
        Ok(self.intra_distance(
            IndoorPoint::new(da.position, da.floor),
            IndoorPoint::new(db.position, db.floor),
        ))
    }

    /// The position of a door as an [`IndoorPoint`].
    pub fn door_point(&self, d: DoorId) -> Result<IndoorPoint, ModelError> {
        let door = self.door(d)?;
        Ok(IndoorPoint::new(door.position, door.floor))
    }

    // ---- construction & mutation primitives ---------------------------------
    //
    // These are the raw arena operations; validated high-level operations
    // live in `builder` (construction) and `topology` (temporal variation).

    /// Adds a partition; returns its id. Used by the builder and by
    /// topology updates.
    pub(crate) fn push_partition(
        &mut self,
        kind: PartitionKind,
        name: Option<String>,
        floors: (Floor, Floor),
        footprint: Polygon,
    ) -> PartitionId {
        let id = PartitionId(self.partitions.len() as u32);
        let bbox = footprint.bbox();
        let is_rect = footprint.as_rect().is_some();
        self.partitions.push(Partition {
            id,
            kind,
            name,
            floor_lo: floors.0,
            floor_hi: floors.1,
            footprint,
            bbox,
            is_rect,
            doors: Vec::new(),
            active: true,
        });
        for f in floors.0..=floors.1 {
            if self.per_floor.len() <= f as usize {
                self.per_floor.resize(f as usize + 1, Vec::new());
            }
            self.per_floor[f as usize].push(id);
        }
        self.version += 1;
        id
    }

    /// Adds a door after validating endpoints; returns its id.
    pub(crate) fn push_door(
        &mut self,
        position: Point2,
        floor: Floor,
        partitions: [PartitionId; 2],
        direction: Direction,
        kind: DoorKind,
    ) -> Result<DoorId, ModelError> {
        if partitions[0] == partitions[1] {
            return Err(ModelError::SelfLoopDoor(partitions[0]));
        }
        for pid in partitions {
            let p = self.partition(pid)?;
            if !p.covers_floor(floor) {
                return Err(ModelError::DoorFloorMismatch {
                    floor,
                    partition: pid,
                });
            }
            // The door midpoint must touch the partition (it sits on the
            // shared wall, hence on the closed boundary of both).
            if !p.contains(position, floor) {
                return Err(ModelError::DoorOffBoundary {
                    position,
                    partition: pid,
                });
            }
        }
        let id = DoorId(self.doors.len() as u32);
        self.doors.push(Door {
            id,
            position,
            floor,
            partitions,
            direction,
            kind,
            open: true,
            active: true,
        });
        for pid in partitions {
            self.partitions[pid.index()].doors.push(id);
        }
        self.version += 1;
        Ok(id)
    }

    /// Tombstones a door, detaching it from its partitions' door lists.
    pub(crate) fn retire_door(&mut self, id: DoorId) -> Result<(), ModelError> {
        let d = self.door(id)?;
        let parts = d.partitions;
        self.doors[id.index()].active = false;
        for pid in parts {
            if let Some(p) = self.partitions.get_mut(pid.index()) {
                p.doors.retain(|&x| x != id);
            }
        }
        self.version += 1;
        Ok(())
    }

    /// Tombstones a partition along with all of its doors. Returns the
    /// retired door ids.
    pub(crate) fn retire_partition(&mut self, id: PartitionId) -> Result<Vec<DoorId>, ModelError> {
        let p = self.partition(id)?;
        let doors: Vec<DoorId> = p.doors.clone();
        let (lo, hi) = (p.floor_lo, p.floor_hi);
        for &d in &doors {
            self.retire_door(d)?;
        }
        self.partitions[id.index()].active = false;
        for f in lo..=hi {
            self.per_floor[f as usize].retain(|&x| x != id);
        }
        self.version += 1;
        Ok(doors)
    }

    /// Sets a door's open flag.
    pub(crate) fn set_door_open(&mut self, id: DoorId, open: bool) -> Result<(), ModelError> {
        self.door(id)?;
        self.doors[id.index()].open = open;
        self.version += 1;
        Ok(())
    }

    /// Re-points one side of a door from partition `from` to partition `to`
    /// (used when a partition is split or merged and its doors move to the
    /// successor partitions). Validates that the door still touches `to`'s
    /// geometry.
    pub(crate) fn retarget_door(
        &mut self,
        id: DoorId,
        from: PartitionId,
        to: PartitionId,
    ) -> Result<(), ModelError> {
        let d = self.door(id)?;
        let (pos, floor) = (d.position, d.floor);
        let side = d
            .partitions
            .iter()
            .position(|&p| p == from)
            .ok_or(ModelError::UnknownDoor(id))?;
        let target = self.partition(to)?;
        if !target.covers_floor(floor) {
            return Err(ModelError::DoorFloorMismatch {
                floor,
                partition: to,
            });
        }
        if !target.contains(pos, floor) {
            return Err(ModelError::DoorOffBoundary {
                position: pos,
                partition: to,
            });
        }
        self.doors[id.index()].partitions[side] = to;
        if let Some(p) = self.partitions.get_mut(from.index()) {
            p.doors.retain(|&x| x != id);
        }
        self.partitions[to.index()].doors.push(id);
        self.version += 1;
        Ok(())
    }

    // ---- wire access (crate-private) ----------------------------------------
    //
    // The durability codec (`crate::wire`) serializes the raw arenas —
    // tombstones included, ids are arena indices — and reconstructs the
    // space without replaying its construction. These accessors exist so
    // the arena fields can stay module-private.

    /// The raw partition arena, tombstones included, in id order.
    pub(crate) fn raw_partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// The raw door arena, tombstones included, in id order.
    pub(crate) fn raw_doors(&self) -> &[Door] {
        &self.doors
    }

    /// Rebuilds a space from serialized arenas.
    ///
    /// `per_floor` is derived, not stored: walking the arena in id order
    /// and filing each active partition under its floors reproduces the
    /// exact per-floor ordering `push_partition`/`retire_partition`
    /// maintain (pushes happen in id order; retirement preserves relative
    /// order). `num_floors` *is* stored — the per-floor table never
    /// shrinks when a top floor's partitions retire, and
    /// `FloorOutOfSpace` validation depends on its length.
    pub(crate) fn from_wire_parts(
        partitions: Vec<Partition>,
        doors: Vec<Door>,
        floor_height: f64,
        stair_walk_factor: f64,
        num_floors: usize,
        version: u64,
    ) -> Self {
        let mut per_floor: Vec<Vec<PartitionId>> = vec![Vec::new(); num_floors];
        for p in partitions.iter().filter(|p| p.active) {
            for f in p.floor_lo..=p.floor_hi {
                if per_floor.len() <= f as usize {
                    per_floor.resize(f as usize + 1, Vec::new());
                }
                per_floor[f as usize].push(p.id);
            }
        }
        IndoorSpace {
            partitions,
            doors,
            floor_height,
            stair_walk_factor,
            per_floor,
            version,
        }
    }

    // ---- diagnostics --------------------------------------------------------

    /// Active partitions with no doors at all (unreachable by construction).
    pub fn sealed_partitions(&self) -> Vec<PartitionId> {
        self.partitions()
            .filter(|p| p.doors.is_empty())
            .map(|p| p.id)
            .collect()
    }

    /// Number of weakly connected components over active partitions,
    /// treating every open door as an undirected link. A well-formed
    /// building has one.
    pub fn connected_components(&self) -> usize {
        let n = self.partitions.len();
        let mut comp = vec![usize::MAX; n];
        let mut count = 0;
        for start in 0..n {
            if !self.partitions[start].active || comp[start] != usize::MAX {
                continue;
            }
            count += 1;
            let mut stack = vec![start];
            comp[start] = count;
            while let Some(i) = stack.pop() {
                for &d in &self.partitions[i].doors {
                    let door = &self.doors[d.index()];
                    if !door.active || !door.open {
                        continue;
                    }
                    for pid in door.partitions {
                        let j = pid.index();
                        if self.partitions[j].active && comp[j] == usize::MAX {
                            comp[j] = count;
                            stack.push(j);
                        }
                    }
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FloorPlanBuilder;
    use idq_geom::Rect2;

    /// Two rooms side by side joined by one door.
    fn two_rooms() -> (IndoorSpace, PartitionId, PartitionId, DoorId) {
        let mut b = FloorPlanBuilder::new(4.0);
        let a = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let c = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let d = b.add_door_between(a, c, Point2::new(10.0, 5.0)).unwrap();
        (b.finish().unwrap(), a, c, d)
    }

    #[test]
    fn point_location_and_accessors() {
        let (s, a, c, d) = two_rooms();
        assert_eq!(
            s.partition_at(IndoorPoint::new(Point2::new(3.0, 3.0), 0)),
            Some(a)
        );
        assert_eq!(
            s.partition_at(IndoorPoint::new(Point2::new(15.0, 3.0), 0)),
            Some(c)
        );
        assert_eq!(
            s.partition_at(IndoorPoint::new(Point2::new(3.0, 3.0), 1)),
            None
        );
        assert_eq!(
            s.partition_at(IndoorPoint::new(Point2::new(50.0, 3.0), 0)),
            None
        );
        assert_eq!(s.doors_of(a).unwrap(), &[d]);
        assert_eq!(s.partitions_of_door(d).unwrap(), [a, c]);
        // The door point is in both rooms (shared wall).
        let on_wall = IndoorPoint::new(Point2::new(10.0, 5.0), 0);
        assert_eq!(s.partitions_at(on_wall).len(), 2);
        assert_eq!(s.partition_at(on_wall), Some(a)); // deterministic min-id
    }

    #[test]
    fn traversal_predicates() {
        let (mut s, a, c, d) = two_rooms();
        assert!(s.can_pass(d, a, c));
        assert!(s.can_pass(d, c, a));
        assert!(s.can_enter(d, a));
        assert!(s.can_leave(d, a));
        s.set_door_open(d, false).unwrap();
        assert!(!s.can_pass(d, a, c));
        assert_eq!(s.entry_doors(a), Vec::<DoorId>::new());
        s.set_door_open(d, true).unwrap();
        assert_eq!(s.exit_doors(c), vec![d]);
    }

    #[test]
    fn distances() {
        let (s, _, _, d) = two_rooms();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        assert!((s.point_to_door(q, d).unwrap() - 8.0).abs() < 1e-9);
        // Same-floor intra distance is Euclidean.
        let a = IndoorPoint::new(Point2::new(0.0, 0.0), 0);
        let b = IndoorPoint::new(Point2::new(3.0, 4.0), 0);
        assert!((s.intra_distance(a, b) - 5.0).abs() < 1e-9);
        // Cross-floor adds scaled vertical drop (floor height 4, factor 2).
        let up = IndoorPoint::new(Point2::new(3.0, 4.0), 1);
        assert!((s.intra_distance(a, up) - (5.0 + 8.0)).abs() < 1e-9);
    }

    #[test]
    fn versioning_and_retirement() {
        let (mut s, a, c, d) = two_rooms();
        let v = s.version();
        s.retire_door(d).unwrap();
        assert!(s.version() > v);
        assert!(s.door(d).is_err());
        assert!(s.doors_of(a).unwrap().is_empty());
        assert_eq!(s.connected_components(), 2);
        let removed = s.retire_partition(c).unwrap();
        assert!(removed.is_empty()); // its only door already retired
        assert!(s.partition(c).is_err());
        assert_eq!(s.partition_count(), 1);
        assert_eq!(s.partitions_on_floor(0), &[a]);
    }

    #[test]
    fn sealed_and_components_diagnostics() {
        let (s, _, _, _) = two_rooms();
        assert!(s.sealed_partitions().is_empty());
        assert_eq!(s.connected_components(), 1);
        let mut b = FloorPlanBuilder::new(4.0);
        b.add_room(0, Rect2::from_bounds(0.0, 0.0, 5.0, 5.0))
            .unwrap();
        let lonely = b.finish().unwrap();
        assert_eq!(lonely.sealed_partitions().len(), 1);
    }

    #[test]
    fn door_validation_errors() {
        let mut b = FloorPlanBuilder::new(4.0);
        let a = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let c = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        // Off both partitions.
        assert!(matches!(
            b.add_door_between(a, c, Point2::new(50.0, 50.0)),
            Err(ModelError::DoorOffBoundary { .. })
        ));
        // Self-loop.
        assert!(matches!(
            b.add_door_between(a, a, Point2::new(5.0, 5.0)),
            Err(ModelError::SelfLoopDoor(_))
        ));
    }
}
