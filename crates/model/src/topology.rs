//! Temporal topology variation (§I, §III-C.1).
//!
//! Indoor spaces change over time: doors open and close, rooms are blocked
//! in emergencies or booked for events, and large rooms are split into
//! smaller ones (or re-merged) by sliding walls — the paper's Room 21
//! banquet/meeting example. Each operation mutates the [`IndoorSpace`] and
//! returns [`TopologyEvent`]s that downstream structures (the doors graph,
//! the composite index) consume for incremental maintenance.

use crate::door::{Direction, DoorKind};
use crate::error::ModelError;
use crate::ids::{DoorId, Floor, PartitionId};
use crate::partition::PartitionKind;
use crate::space::IndoorSpace;
use idq_geom::{Point2, Polygon};

/// A change to the indoor topology, for incremental index maintenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyEvent {
    /// A new partition appeared.
    PartitionInserted(PartitionId),
    /// A partition (and its doors) was removed.
    PartitionRemoved(PartitionId),
    /// A partition was split in two (sliding wall mounted).
    PartitionSplit {
        /// The retired original.
        old: PartitionId,
        /// The two halves.
        new: [PartitionId; 2],
    },
    /// Two partitions were merged (sliding wall dismounted).
    PartitionsMerged {
        /// The retired halves.
        old: [PartitionId; 2],
        /// The merged partition.
        new: PartitionId,
    },
    /// A door was added.
    DoorInserted(DoorId),
    /// A door was removed.
    DoorRemoved(DoorId),
    /// A door opened or closed.
    DoorStateChanged(DoorId),
    /// A door was re-pointed to a successor partition during split/merge.
    DoorRetargeted(DoorId),
}

/// A door requested as part of a [`PartitionSpec`].
#[derive(Clone, Debug)]
pub struct DoorSpec {
    /// Door midpoint.
    pub position: Point2,
    /// The existing partition on the other side.
    pub other: PartitionId,
    /// Directionality. For [`Direction::OneWay`], passage runs from the
    /// *new* partition into `other`.
    pub direction: Direction,
}

/// Specification of a partition to insert dynamically.
#[derive(Clone, Debug)]
pub struct PartitionSpec {
    /// Kind of partition.
    pub kind: PartitionKind,
    /// Optional name.
    pub name: Option<String>,
    /// Floor the partition occupies.
    pub floor: Floor,
    /// Footprint polygon.
    pub footprint: Polygon,
    /// Doors connecting it to existing partitions.
    pub doors: Vec<DoorSpec>,
}

/// An axis-aligned split line for [`IndoorSpace::split_partition`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SplitLine {
    /// Split at `x = c` (vertical sliding wall).
    AtX(f64),
    /// Split at `y = c` (horizontal sliding wall).
    AtY(f64),
}

impl IndoorSpace {
    /// Closes a door (movement through it becomes impossible).
    pub fn close_door(&mut self, d: DoorId) -> Result<TopologyEvent, ModelError> {
        self.set_door_open(d, false)?;
        Ok(TopologyEvent::DoorStateChanged(d))
    }

    /// Re-opens a closed door.
    pub fn open_door(&mut self, d: DoorId) -> Result<TopologyEvent, ModelError> {
        self.set_door_open(d, true)?;
        Ok(TopologyEvent::DoorStateChanged(d))
    }

    /// Adds a door between two existing partitions (temporary doors opened
    /// for events, §II-A).
    pub fn insert_door(
        &mut self,
        a: PartitionId,
        b: PartitionId,
        position: Point2,
        floor: Floor,
        direction: Direction,
    ) -> Result<(DoorId, TopologyEvent), ModelError> {
        let id = self.push_door(position, floor, [a, b], direction, DoorKind::Interior)?;
        Ok((id, TopologyEvent::DoorInserted(id)))
    }

    /// Permanently removes a door.
    pub fn remove_door(&mut self, d: DoorId) -> Result<TopologyEvent, ModelError> {
        self.retire_door(d)?;
        Ok(TopologyEvent::DoorRemoved(d))
    }

    /// Inserts a new partition with its connecting doors (§III-C.1,
    /// *Insertion*).
    pub fn insert_partition(
        &mut self,
        spec: PartitionSpec,
    ) -> Result<(PartitionId, Vec<DoorId>, Vec<TopologyEvent>), ModelError> {
        // Validate doors up-front against the other partitions so a failure
        // does not leave a half-inserted partition behind.
        for ds in &spec.doors {
            let other = self.partition(ds.other)?;
            if !other.covers_floor(spec.floor) {
                return Err(ModelError::DoorFloorMismatch {
                    floor: spec.floor,
                    partition: ds.other,
                });
            }
            if !other.contains(ds.position, spec.floor) {
                return Err(ModelError::DoorOffBoundary {
                    position: ds.position,
                    partition: ds.other,
                });
            }
            if !spec.footprint.contains(ds.position) {
                return Err(ModelError::BadFootprint(format!(
                    "door at {} outside the new footprint",
                    ds.position
                )));
            }
        }
        let pid = self.push_partition(
            spec.kind,
            spec.name,
            (spec.floor, spec.floor),
            spec.footprint,
        );
        let mut events = vec![TopologyEvent::PartitionInserted(pid)];
        let mut doors = Vec::with_capacity(spec.doors.len());
        for ds in &spec.doors {
            let id = self.push_door(
                ds.position,
                spec.floor,
                [pid, ds.other],
                ds.direction,
                DoorKind::Interior,
            )?;
            doors.push(id);
            events.push(TopologyEvent::DoorInserted(id));
        }
        Ok((pid, doors, events))
    }

    /// Deletes a partition and its doors (§III-C.1, *Deletion*).
    pub fn delete_partition(&mut self, pid: PartitionId) -> Result<Vec<TopologyEvent>, ModelError> {
        let doors = self.retire_partition(pid)?;
        let mut events: Vec<TopologyEvent> =
            doors.into_iter().map(TopologyEvent::DoorRemoved).collect();
        events.push(TopologyEvent::PartitionRemoved(pid));
        Ok(events)
    }

    /// Splits a rectangular partition in two along an axis-aligned line —
    /// mounting a sliding wall. Existing doors are re-pointed to the half
    /// that geometrically contains them; `connecting_door` optionally adds
    /// a door in the new wall (meeting-style layouts keep the halves
    /// connected).
    pub fn split_partition(
        &mut self,
        pid: PartitionId,
        line: SplitLine,
        connecting_door: Option<Point2>,
    ) -> Result<([PartitionId; 2], Vec<TopologyEvent>), ModelError> {
        let p = self.partition(pid)?;
        if p.floor_lo != p.floor_hi {
            return Err(ModelError::WrongKind(pid));
        }
        let floor = p.floor_lo;
        let kind = p.kind;
        let name = p.name.clone();
        let rect = p.footprint.as_rect().ok_or(ModelError::WrongKind(pid))?;
        let halves = match line {
            SplitLine::AtX(c) => rect.split_at_x(c),
            SplitLine::AtY(c) => rect.split_at_y(c),
        }
        .ok_or(ModelError::BadSplit(pid))?;
        let old_doors: Vec<DoorId> = p.doors.clone();

        // Pre-validate: every existing door must land in exactly one half
        // (doors *on* the split line would be swallowed by the new wall).
        for &d in &old_doors {
            let pos = self.door(d)?.position;
            let in_a = halves.0.contains(pos);
            let in_b = halves.1.contains(pos);
            if in_a && in_b {
                return Err(ModelError::BadSplit(pid));
            }
        }
        if let Some(pos) = connecting_door {
            let on_line = match line {
                SplitLine::AtX(c) => (pos.x - c).abs() < 1e-6,
                SplitLine::AtY(c) => (pos.y - c).abs() < 1e-6,
            };
            if !on_line || !rect.contains(pos) {
                return Err(ModelError::BadSplit(pid));
            }
        }

        let name_a = name.as_ref().map(|n| format!("{n}.a"));
        let name_b = name.as_ref().map(|n| format!("{n}.b"));
        let a = self.push_partition(kind, name_a, (floor, floor), Polygon::from_rect(halves.0));
        let b = self.push_partition(kind, name_b, (floor, floor), Polygon::from_rect(halves.1));
        let mut events = vec![TopologyEvent::PartitionSplit {
            old: pid,
            new: [a, b],
        }];

        for &d in &old_doors {
            let pos = self.door(d)?.position;
            let target = if halves.0.contains(pos) { a } else { b };
            self.retarget_door(d, pid, target)?;
            events.push(TopologyEvent::DoorRetargeted(d));
        }
        // Retire the original only after doors have moved off it.
        let leftover = self.retire_partition(pid)?;
        debug_assert!(leftover.is_empty(), "doors were retargeted first");

        if let Some(pos) = connecting_door {
            let d = self.push_door(
                pos,
                floor,
                [a, b],
                Direction::Bidirectional,
                DoorKind::Interior,
            )?;
            events.push(TopologyEvent::DoorInserted(d));
        }
        Ok(([a, b], events))
    }

    /// Merges two rectangular partitions whose union is a rectangle —
    /// dismounting a sliding wall (banquet-style layouts). Doors between
    /// the two are removed; all other doors are re-pointed to the merged
    /// partition.
    pub fn merge_partitions(
        &mut self,
        a: PartitionId,
        b: PartitionId,
    ) -> Result<(PartitionId, Vec<TopologyEvent>), ModelError> {
        if a == b {
            return Err(ModelError::BadMerge(a, b));
        }
        let pa = self.partition(a)?;
        let pb = self.partition(b)?;
        if pa.floor_lo != pa.floor_hi
            || pb.floor_lo != pb.floor_hi
            || pa.floor_lo != pb.floor_lo
            || pa.kind != pb.kind
        {
            return Err(ModelError::BadMerge(a, b));
        }
        let floor = pa.floor_lo;
        let kind = pa.kind;
        let ra = pa.footprint.as_rect().ok_or(ModelError::BadMerge(a, b))?;
        let rb = pb.footprint.as_rect().ok_or(ModelError::BadMerge(a, b))?;
        let union = ra.union(&rb);
        if (union.area() - (ra.area() + rb.area())).abs() > 1e-6 * union.area().max(1.0) {
            // Union is not exactly the two rectangles: not adjacent with a
            // full shared edge.
            return Err(ModelError::BadMerge(a, b));
        }
        let name = match (&pa.name, &pb.name) {
            (Some(na), _) => Some(na.trim_end_matches(".a").to_string()),
            (None, Some(nb)) => Some(nb.trim_end_matches(".b").to_string()),
            _ => None,
        };

        let doors_a: Vec<DoorId> = pa.doors.clone();
        let doors_b: Vec<DoorId> = pb.doors.clone();
        let merged = self.push_partition(kind, name, (floor, floor), Polygon::from_rect(union));
        let mut events = vec![TopologyEvent::PartitionsMerged {
            old: [a, b],
            new: merged,
        }];

        for (src, doors) in [(a, doors_a), (b, doors_b)] {
            for d in doors {
                // A door may already have been retired as internal while
                // processing the first half.
                let Ok(door) = self.door(d) else { continue };
                // Doors between the two halves disappear with the wall.
                let internal = door.touches(a) && door.touches(b);
                if internal {
                    self.retire_door(d)?;
                    events.push(TopologyEvent::DoorRemoved(d));
                } else {
                    self.retarget_door(d, src, merged)?;
                    events.push(TopologyEvent::DoorRetargeted(d));
                }
            }
        }
        for pid in [a, b] {
            let leftover = self.retire_partition(pid)?;
            debug_assert!(leftover.is_empty());
        }
        Ok((merged, events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FloorPlanBuilder;
    use crate::point::IndoorPoint;
    use idq_geom::Rect2;

    /// Room 21 from the paper's Figure 1: a large room with two doors
    /// (d41 west, d42 east) that can be split by a sliding wall.
    fn banquet_hall() -> (IndoorSpace, PartitionId, [DoorId; 2]) {
        let mut b = FloorPlanBuilder::new(4.0);
        let west = b
            .add_room(0, Rect2::from_bounds(-10.0, 0.0, 0.0, 20.0))
            .unwrap();
        let hall = b
            .add_named_room("room 21", 0, Rect2::from_bounds(0.0, 0.0, 30.0, 20.0))
            .unwrap();
        let east = b
            .add_room(0, Rect2::from_bounds(30.0, 0.0, 40.0, 20.0))
            .unwrap();
        let d41 = b
            .add_door_between(west, hall, Point2::new(0.0, 10.0))
            .unwrap();
        let d42 = b
            .add_door_between(hall, east, Point2::new(30.0, 10.0))
            .unwrap();
        (b.finish().unwrap(), hall, [d41, d42])
    }

    #[test]
    fn split_reassigns_doors_and_retires_original() {
        let (mut s, hall, [d41, d42]) = banquet_hall();
        let ([a, b], events) = s.split_partition(hall, SplitLine::AtX(15.0), None).unwrap();
        assert!(s.partition(hall).is_err());
        assert!(events.contains(&TopologyEvent::PartitionSplit {
            old: hall,
            new: [a, b]
        }));
        // d41 (at x=0) went to the west half, d42 (x=30) to the east half.
        assert!(s.door(d41).unwrap().partitions.contains(&a));
        assert!(s.door(d42).unwrap().partitions.contains(&b));
    }

    #[test]
    fn split_components_check() {
        let (mut s, hall, _) = banquet_hall();
        s.split_partition(hall, SplitLine::AtX(15.0), None).unwrap();
        assert_eq!(s.connected_components(), 2);
    }

    #[test]
    fn split_with_connecting_door_stays_connected() {
        let (mut s, hall, _) = banquet_hall();
        let ([a, b], events) = s
            .split_partition(hall, SplitLine::AtX(15.0), Some(Point2::new(15.0, 10.0)))
            .unwrap();
        assert_eq!(s.connected_components(), 1);
        let inserted = events
            .iter()
            .any(|e| matches!(e, TopologyEvent::DoorInserted(_)));
        assert!(inserted);
        // The new door connects exactly the two halves.
        let wall_door = s
            .doors()
            .find(|d| d.touches(a) && d.touches(b))
            .expect("connecting door");
        assert_eq!(wall_door.position, Point2::new(15.0, 10.0));
    }

    #[test]
    fn merge_restores_single_room() {
        let (mut s, hall, [d41, d42]) = banquet_hall();
        let ([a, b], _) = s
            .split_partition(hall, SplitLine::AtX(15.0), Some(Point2::new(15.0, 10.0)))
            .unwrap();
        let before_doors = s.door_count();
        let (merged, events) = s.merge_partitions(a, b).unwrap();
        // The sliding-wall door disappeared with the wall.
        assert_eq!(s.door_count(), before_doors - 1);
        assert!(s.partition(a).is_err() && s.partition(b).is_err());
        let m = s.partition(merged).unwrap();
        assert_eq!(m.bbox, Rect2::from_bounds(0.0, 0.0, 30.0, 20.0));
        assert!(events
            .iter()
            .any(|e| matches!(e, TopologyEvent::DoorRemoved(_))));
        // Outer doors survived and now point at the merged room.
        assert!(s.door(d41).unwrap().partitions.contains(&merged));
        assert!(s.door(d42).unwrap().partitions.contains(&merged));
        assert_eq!(s.connected_components(), 1);
        // Point location sees the merged room.
        assert_eq!(
            s.partition_at(IndoorPoint::new(Point2::new(15.0, 10.0), 0)),
            Some(merged)
        );
    }

    #[test]
    fn merge_rejects_non_adjacent() {
        let mut b = FloorPlanBuilder::new(4.0);
        let r1 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        let mut s = b.finish().unwrap();
        assert!(matches!(
            s.merge_partitions(r1, r2),
            Err(ModelError::BadMerge(..))
        ));
        assert!(matches!(
            s.merge_partitions(r1, r1),
            Err(ModelError::BadMerge(..))
        ));
    }

    #[test]
    fn split_rejects_door_on_split_line() {
        let (mut s, hall, _) = banquet_hall();
        // d41 sits at x = 0 on the west wall; splitting at x = 0 is already
        // rejected as a degenerate cut, so split exactly through d42's x.
        assert!(matches!(
            s.split_partition(hall, SplitLine::AtX(30.0), None),
            Err(ModelError::BadSplit(_) | ModelError::WrongKind(_))
        ));
    }

    #[test]
    fn insert_and_delete_partition_roundtrip() {
        let (mut s, hall, _) = banquet_hall();
        let spec = PartitionSpec {
            kind: PartitionKind::Room,
            name: Some("pop-up booth".into()),
            floor: 0,
            footprint: Polygon::from_rect(Rect2::from_bounds(0.0, 20.0, 10.0, 30.0)),
            doors: vec![DoorSpec {
                position: Point2::new(5.0, 20.0),
                other: hall,
                direction: Direction::Bidirectional,
            }],
        };
        let parts_before = s.partition_count();
        let doors_before = s.door_count();
        let (pid, doors, events) = s.insert_partition(spec).unwrap();
        assert_eq!(doors.len(), 1);
        assert_eq!(events.len(), 2);
        assert_eq!(s.partition_count(), parts_before + 1);
        let events = s.delete_partition(pid).unwrap();
        assert_eq!(events.len(), 2); // door removed + partition removed
        assert_eq!(s.partition_count(), parts_before);
        assert_eq!(s.door_count(), doors_before);
    }

    #[test]
    fn insert_partition_validates_doors_before_mutating() {
        let (mut s, hall, _) = banquet_hall();
        let parts_before = s.partition_count();
        let spec = PartitionSpec {
            kind: PartitionKind::Room,
            name: None,
            floor: 0,
            footprint: Polygon::from_rect(Rect2::from_bounds(100.0, 100.0, 110.0, 110.0)),
            doors: vec![DoorSpec {
                position: Point2::new(105.0, 100.0),
                other: hall, // hall is nowhere near (100,100)
                direction: Direction::Bidirectional,
            }],
        };
        assert!(s.insert_partition(spec).is_err());
        assert_eq!(s.partition_count(), parts_before, "no partial insert");
    }

    #[test]
    fn one_way_door_events_rebuild_graph_consistently() {
        use crate::doors_graph::DoorsGraph;
        let (mut s, hall, _) = banquet_hall();
        let mut g = DoorsGraph::build(&s);
        let ([a, b], events) = s
            .split_partition(hall, SplitLine::AtX(15.0), Some(Point2::new(15.0, 10.0)))
            .unwrap();
        for ev in &events {
            g.apply(&s, ev);
        }
        let fresh = DoorsGraph::build(&s);
        assert_eq!(g.edge_count(), fresh.edge_count());
        let (_, events) = s.merge_partitions(a, b).unwrap();
        for ev in &events {
            g.apply(&s, ev);
        }
        let fresh = DoorsGraph::build(&s);
        assert_eq!(g.edge_count(), fresh.edge_count());
    }
}
