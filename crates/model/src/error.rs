//! Model-level errors.

use crate::ids::{DoorId, Floor, PartitionId};
use idq_geom::Point2;

/// Errors raised while constructing or mutating an indoor space.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// Unknown or out-of-range partition id.
    UnknownPartition(PartitionId),
    /// Unknown or out-of-range door id.
    UnknownDoor(DoorId),
    /// The partition was deleted earlier.
    PartitionInactive(PartitionId),
    /// The door was deleted earlier.
    DoorInactive(DoorId),
    /// A door must connect two distinct partitions.
    SelfLoopDoor(PartitionId),
    /// Door position does not lie on/in both partitions it connects.
    DoorOffBoundary {
        /// The offending door position.
        position: Point2,
        /// The partition that does not contain it.
        partition: PartitionId,
    },
    /// The door floor is outside a connected partition's floor interval.
    DoorFloorMismatch {
        /// The door's floor.
        floor: Floor,
        /// The partition whose interval excludes it.
        partition: PartitionId,
    },
    /// Two partitions share no common floor so a door floor is ambiguous or
    /// impossible.
    NoCommonFloor(PartitionId, PartitionId),
    /// Invalid polygon supplied for a footprint.
    BadFootprint(String),
    /// A split line misses the partition interior.
    BadSplit(PartitionId),
    /// Merge requires two same-floor, edge-adjacent partitions whose union
    /// is a valid footprint.
    BadMerge(PartitionId, PartitionId),
    /// Operation valid only on the given partition kind.
    WrongKind(PartitionId),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::UnknownPartition(p) => write!(f, "unknown partition {p}"),
            ModelError::UnknownDoor(d) => write!(f, "unknown door {d}"),
            ModelError::PartitionInactive(p) => write!(f, "partition {p} was deleted"),
            ModelError::DoorInactive(d) => write!(f, "door {d} was deleted"),
            ModelError::SelfLoopDoor(p) => {
                write!(
                    f,
                    "door must connect two distinct partitions, got {p} twice"
                )
            }
            ModelError::DoorOffBoundary {
                position,
                partition,
            } => {
                write!(f, "door at {position} does not touch partition {partition}")
            }
            ModelError::DoorFloorMismatch { floor, partition } => {
                write!(
                    f,
                    "door floor {floor} outside partition {partition}'s floors"
                )
            }
            ModelError::NoCommonFloor(a, b) => {
                write!(f, "partitions {a} and {b} share no common floor")
            }
            ModelError::BadFootprint(msg) => write!(f, "bad footprint: {msg}"),
            ModelError::BadSplit(p) => write!(f, "split line misses interior of {p}"),
            ModelError::BadMerge(a, b) => write!(f, "cannot merge {a} and {b}"),
            ModelError::WrongKind(p) => write!(f, "operation not valid for kind of {p}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        let e = ModelError::DoorOffBoundary {
            position: Point2::new(1.0, 2.0),
            partition: PartitionId(3),
        };
        assert!(e.to_string().contains("P3"));
        assert!(ModelError::UnknownDoor(DoorId(9))
            .to_string()
            .contains("d9"));
    }
}
