//! Hand-rolled wire primitives.
//!
//! The build environment vendors no serialization crate, so every durable
//! byte in this workspace goes through these helpers: little-endian
//! integers, `f64` via its IEEE-754 bit pattern (bit-exact round-trip, the
//! property the digest oracles depend on), length-prefixed UTF-8 strings,
//! and CRC32 (IEEE polynomial) for frame validation.

use crate::error::StorageError;

// --- encoding -------------------------------------------------------------

pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_usize(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

/// `f64` as its raw bit pattern: round-trips every value (including NaN
/// payloads and signed zeros) bit-exactly.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    put_u8(buf, v as u8);
}

pub fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_usize(buf, v.len());
    buf.extend_from_slice(v.as_bytes());
}

// --- decoding -------------------------------------------------------------

/// A bounds-checked reader over a payload slice.
///
/// Every `take_*` returns a typed [`StorageError::Decode`] carrying the
/// caller-supplied value name and the byte offset of the failure, so a
/// corrupt payload reports *what* stopped parsing, not just that bytes ran
/// out.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub fn pos(&self) -> usize {
        self.pos
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every payload byte was consumed — catches codecs that
    /// silently drift out of sync with their encoder.
    pub fn finish(self, what: &'static str) -> Result<(), StorageError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StorageError::Decode {
                what,
                offset: self.pos,
            })
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], StorageError> {
        if self.remaining() < n {
            return Err(StorageError::Decode {
                what,
                offset: self.pos,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn take_u8(&mut self, what: &'static str) -> Result<u8, StorageError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn take_u32(&mut self, what: &'static str) -> Result<u32, StorageError> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes(s.try_into().expect("4-byte slice")))
    }

    pub fn take_u64(&mut self, what: &'static str) -> Result<u64, StorageError> {
        let s = self.take(8, what)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8-byte slice")))
    }

    pub fn take_usize(&mut self, what: &'static str) -> Result<usize, StorageError> {
        let v = self.take_u64(what)?;
        usize::try_from(v).map_err(|_| StorageError::Decode {
            what,
            offset: self.pos,
        })
    }

    /// A `usize` that will be used as a collection length: additionally
    /// bounded by the bytes remaining so a corrupt length cannot trigger
    /// an OOM-sized allocation before the decode fails.
    pub fn take_len(&mut self, what: &'static str) -> Result<usize, StorageError> {
        let v = self.take_usize(what)?;
        if v > self.remaining() {
            return Err(StorageError::Decode {
                what,
                offset: self.pos,
            });
        }
        Ok(v)
    }

    pub fn take_f64(&mut self, what: &'static str) -> Result<f64, StorageError> {
        Ok(f64::from_bits(self.take_u64(what)?))
    }

    pub fn take_bool(&mut self, what: &'static str) -> Result<bool, StorageError> {
        match self.take_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(StorageError::Decode {
                what,
                offset: self.pos - 1,
            }),
        }
    }

    pub fn take_str(&mut self, what: &'static str) -> Result<String, StorageError> {
        let len = self.take_len(what)?;
        let start = self.pos;
        let s = self.take(len, what)?;
        String::from_utf8(s.to_vec()).map_err(|_| StorageError::Decode {
            what,
            offset: start,
        })
    }

    pub fn take_bytes(&mut self, what: &'static str) -> Result<&'a [u8], StorageError> {
        let len = self.take_len(what)?;
        self.take(len, what)
    }
}

// --- crc32 ----------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// Incremental CRC32 (IEEE 802.3 polynomial).
#[derive(Debug, Clone)]
pub struct Crc32(u32);

impl Crc32 {
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.0;
        for &b in data {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    pub fn finish(&self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_incremental_matches_oneshot() {
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), crc32(b"123456789"));
    }

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 3);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        put_bool(&mut buf, true);
        put_str(&mut buf, "hällo");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.take_u8("t").unwrap(), 7);
        assert_eq!(c.take_u32("t").unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.take_u64("t").unwrap(), u64::MAX - 3);
        let z = c.take_f64("t").unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits());
        assert!(c.take_f64("t").unwrap().is_nan());
        assert!(c.take_bool("t").unwrap());
        assert_eq!(c.take_str("t").unwrap(), "hällo");
        c.finish("t").unwrap();
    }

    #[test]
    fn short_buffer_reports_offset() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1);
        let mut c = Cursor::new(&buf);
        c.take_u32("a").unwrap();
        let err = c.take_u64("b").unwrap_err();
        assert_eq!(
            err,
            StorageError::Decode {
                what: "b",
                offset: 4
            }
        );
    }

    #[test]
    fn oversized_len_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        put_usize(&mut buf, usize::MAX / 2);
        let mut c = Cursor::new(&buf);
        assert!(c.take_len("huge").is_err());
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let buf = [0u8; 3];
        let mut c = Cursor::new(&buf);
        c.take_u8("t").unwrap();
        assert!(c.finish("t").is_err());
    }
}
