//! The segmented append-only write-ahead log.
//!
//! ## On-disk format
//!
//! The log is a sequence of segment files named `wal-{seq:016x}.log`.
//! Each segment holds framed records:
//!
//! ```text
//! u32 payload_len | u32 crc32(len_le ++ epoch_le ++ payload) | u64 epoch | payload
//! ```
//!
//! The CRC covers the length field too, so a damaged `len` cannot send
//! the scanner to a bogus frame boundary that happens to re-validate.
//!
//! One record is one staged *batch*; a **commit group** is the run of
//! consecutive records sharing an epoch, appended by a single
//! [`Wal::append_commit`] call (the engine's group-commit window). Records
//! therefore appear in exactly `(epoch, offset_in_epoch)` order, which is
//! the order the replay oracle proves bit-exact.
//!
//! ## Sync policy
//!
//! | policy   | durability point                                    |
//! |----------|-----------------------------------------------------|
//! | `Always` | fsync after every record                            |
//! | `Group`  | one fsync per commit group (default)                |
//! | `Os`     | never fsync; the OS flushes when it pleases         |
//!
//! ## Recovery scan
//!
//! [`Wal::open`] reads every segment in sequence order. A malformed frame
//! in the *final* segment is a torn tail: the segment is truncated to the
//! last valid frame boundary and the bytes after it are discarded. A
//! malformed frame in any earlier segment is [`StorageError::Corrupt`] —
//! prior segments were sealed with their contents synced, so damage there
//! is real corruption, not an interrupted append. After the scan the torn
//! tail (if any) is physically truncated, all existing segments are
//! sealed, and appends continue in a fresh segment.
//!
//! A genuine torn tail is an interrupted *suffix*: nothing after the
//! tear point ever reached a durable frame boundary. So before the
//! final segment's malformed tail is written off as torn, the scanner
//! looks past the damage for a complete, CRC-valid frame. Finding one
//! means acknowledged records sit beyond the damage — that is
//! mid-segment corruption of fsynced data, and it fails recovery with
//! [`StorageError::Corrupt`] instead of silently discarding the
//! acknowledged commits after it. (Out-of-order writeback of a never-
//! synced suffix could in principle trip this too; we prefer a loud
//! recovery error over silently dropping possibly-acknowledged data.)

use std::sync::Arc;

use crate::backend::{LogFile, StorageBackend};
use crate::codec::Cursor;
use crate::error::StorageError;

/// When the WAL forces appended records to durable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every record. Strongest, slowest.
    Always,
    /// One fsync per commit group, before the epoch swap publishes it.
    /// The default: a crash never loses an *acknowledged* commit.
    Group,
    /// Never fsync on the commit path; durability is whenever the OS
    /// writes back. A crash may lose a suffix of acknowledged commits
    /// (recovery still lands on a consistent earlier epoch).
    Os,
}

impl SyncPolicy {
    pub fn as_str(&self) -> &'static str {
        match self {
            SyncPolicy::Always => "always",
            SyncPolicy::Group => "group",
            SyncPolicy::Os => "os",
        }
    }
}

/// One recovered WAL record: a single staged batch within epoch `epoch`.
/// Records are returned in append order, so `offset_in_epoch` is implicit
/// in a record's position among those sharing its epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    pub epoch: u64,
    pub payload: Vec<u8>,
}

const FRAME_HEADER: usize = 4 + 4 + 8;

#[derive(Debug)]
struct SealedSegment {
    name: String,
    last_epoch: u64,
}

/// The open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    backend: Arc<dyn StorageBackend>,
    policy: SyncPolicy,
    segment_bytes: u64,
    sealed: Vec<SealedSegment>,
    active: Box<dyn LogFile>,
    active_name: String,
    active_last_epoch: Option<u64>,
    next_seq: u64,
}

fn segment_name(seq: u64) -> String {
    format!("wal-{seq:016x}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if rest.len() != 16 {
        return None;
    }
    u64::from_str_radix(rest, 16).ok()
}

/// Result of scanning one segment's bytes.
struct SegmentScan {
    records: Vec<WalRecord>,
    /// Length of the valid prefix; `< data.len()` means a torn tail.
    valid_len: u64,
    /// Offset of a complete, CRC-valid frame found *past* the first
    /// malformed byte. `Some` means acknowledged records sit beyond the
    /// damage: mid-segment corruption, not an interrupted final append.
    intact_after: Option<u64>,
}

fn frame_crc(len: usize, epoch: u64, payload: &[u8]) -> u32 {
    let mut check = crate::codec::Crc32::new();
    check.update(&(len as u32).to_le_bytes());
    check.update(&epoch.to_le_bytes());
    check.update(payload);
    check.finish()
}

/// Parse the frame at `pos`, returning `(record, end_offset)` when it is
/// complete and CRC-valid.
fn parse_frame(data: &[u8], pos: usize) -> Option<(WalRecord, usize)> {
    if data.len() - pos < FRAME_HEADER {
        return None;
    }
    let mut c = Cursor::new(&data[pos..pos + FRAME_HEADER]);
    let len = c.take_u32("frame len").expect("header sized") as usize;
    let crc = c.take_u32("frame crc").expect("header sized");
    let epoch = c.take_u64("frame epoch").expect("header sized");
    let payload_start = pos + FRAME_HEADER;
    if data.len() - payload_start < len {
        return None; // incomplete payload
    }
    let payload = &data[payload_start..payload_start + len];
    if frame_crc(len, epoch, payload) != crc {
        return None; // partially-written or damaged frame
    }
    Some((
        WalRecord {
            epoch,
            payload: payload.to_vec(),
        },
        payload_start + len,
    ))
}

fn scan_segment(data: &[u8]) -> SegmentScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some((record, end)) = parse_frame(data, pos) {
        records.push(record);
        pos = end;
    }
    // The frame at `pos` failed; resync byte-by-byte past it looking for
    // a later frame that still validates (CRC collision odds ~2^-32 make
    // a false positive negligible). Only runs on damaged segments.
    let intact_after = (pos + 1..data.len())
        .find(|&at| parse_frame(data, at).is_some())
        .map(|at| at as u64);
    SegmentScan {
        records,
        valid_len: pos as u64,
        intact_after,
    }
}

fn encode_frame(epoch: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&frame_crc(payload.len(), epoch, payload).to_le_bytes());
    frame.extend_from_slice(&epoch.to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

impl Wal {
    /// Open (or create) the log under `backend`, returning the WAL
    /// positioned for appends plus every durable record in
    /// `(epoch, offset_in_epoch)` order.
    ///
    /// Tolerates a torn tail in the final segment (truncates it);
    /// malformed bytes anywhere else are [`StorageError::Corrupt`].
    pub fn open(
        backend: Arc<dyn StorageBackend>,
        policy: SyncPolicy,
        segment_bytes: u64,
    ) -> Result<(Wal, Vec<WalRecord>), StorageError> {
        let mut seqs: Vec<(u64, String)> = backend
            .list()?
            .into_iter()
            .filter_map(|name| parse_segment_name(&name).map(|seq| (seq, name)))
            .collect();
        seqs.sort_unstable();

        let mut records = Vec::new();
        let mut sealed = Vec::new();
        let last_index = seqs.len().wrapping_sub(1);
        for (i, (_, name)) in seqs.iter().enumerate() {
            let data = backend.read(name)?;
            let scan = scan_segment(&data);
            let torn = scan.valid_len < data.len() as u64;
            if torn && i != last_index {
                return Err(StorageError::Corrupt {
                    path: name.clone(),
                    offset: scan.valid_len,
                    reason: "malformed frame in a sealed (non-final) segment".to_string(),
                });
            }
            if torn {
                // An intact frame past the damage means the malformed
                // bytes are not an interrupted final append — they sit in
                // front of data that did reach a durable frame boundary.
                // Truncating here would silently discard those records,
                // so surface corruption instead.
                if let Some(at) = scan.intact_after {
                    return Err(StorageError::Corrupt {
                        path: name.clone(),
                        offset: scan.valid_len,
                        reason: format!(
                            "malformed frame followed by an intact frame at byte {at}: \
                             mid-segment corruption, not a torn tail"
                        ),
                    });
                }
                // Physically discard the torn tail so a later crash cannot
                // resurrect ambiguous bytes.
                let mut file = backend.open_at(name, scan.valid_len)?;
                file.sync()?;
            }
            match scan.records.last() {
                Some(last) => sealed.push(SealedSegment {
                    name: name.clone(),
                    last_epoch: last.epoch,
                }),
                None => backend.delete(name)?,
            }
            records.extend(scan.records);
        }

        let next_seq = seqs.last().map(|(seq, _)| seq + 1).unwrap_or(0);
        let active_name = segment_name(next_seq);
        let active = backend.create(&active_name)?;
        Ok((
            Wal {
                backend,
                policy,
                segment_bytes,
                sealed,
                active,
                active_name,
                active_last_epoch: None,
                next_seq: next_seq + 1,
            },
            records,
        ))
    }

    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Append one commit group: every batch payload of `epoch`, in
    /// `offset_in_epoch` order. Applies the sync policy, then rotates the
    /// segment if it outgrew `segment_bytes` (rotation happens only at
    /// group boundaries, so a group never spans segments).
    pub fn append_commit(&mut self, epoch: u64, payloads: &[Vec<u8>]) -> Result<(), StorageError> {
        for payload in payloads {
            let frame = encode_frame(epoch, payload);
            self.active.append(&frame)?;
            if self.policy == SyncPolicy::Always {
                self.active.sync()?;
            }
        }
        if self.policy == SyncPolicy::Group {
            self.active.sync()?;
        }
        self.active_last_epoch = Some(epoch);
        if self.active.len() >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), StorageError> {
        // Seal the active segment: its contents must be durable before the
        // sealed invariant (torn bytes there = corruption) can hold.
        self.active.sync()?;
        let name = segment_name(self.next_seq);
        let file = self.backend.create(&name)?;
        let old = std::mem::replace(&mut self.active, file);
        drop(old);
        if let Some(last_epoch) = self.active_last_epoch.take() {
            self.sealed.push(SealedSegment {
                name: std::mem::replace(&mut self.active_name, name),
                last_epoch,
            });
        } else {
            // Empty segment: nothing to recover from it.
            let stale = std::mem::replace(&mut self.active_name, name);
            self.backend.delete(&stale)?;
        }
        self.next_seq += 1;
        Ok(())
    }

    /// Force everything appended so far durable regardless of policy
    /// (shutdown flush for `Group`/`Os`).
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.active.sync()
    }

    /// Drop sealed segments whose every record is covered by a checkpoint
    /// at `epoch` (i.e. `last_epoch <= epoch`). The active segment is
    /// never deleted.
    pub fn truncate_below(&mut self, epoch: u64) -> Result<(), StorageError> {
        let mut kept = Vec::new();
        for seg in self.sealed.drain(..) {
            if seg.last_epoch <= epoch {
                self.backend.delete(&seg.name)?;
            } else {
                kept.push(seg);
            }
        }
        self.sealed = kept;
        Ok(())
    }

    /// Number of sealed segments still on disk (test/introspection).
    pub fn sealed_segments(&self) -> usize {
        self.sealed.len()
    }

    /// Epoch of the newest record this WAL holds (0 when empty) — error
    /// context for flush failures.
    pub fn last_epoch(&self) -> u64 {
        self.active_last_epoch
            .or_else(|| self.sealed.last().map(|s| s.last_epoch))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemBackend;

    fn payloads(items: &[&[u8]]) -> Vec<Vec<u8>> {
        items.iter().map(|p| p.to_vec()).collect()
    }

    fn open_mem(
        backend: &MemBackend,
        policy: SyncPolicy,
        segment_bytes: u64,
    ) -> (Wal, Vec<WalRecord>) {
        Wal::open(Arc::new(backend.clone()), policy, segment_bytes).unwrap()
    }

    #[test]
    fn round_trip_groups_in_order() {
        let b = MemBackend::new();
        let (mut wal, recs) = open_mem(&b, SyncPolicy::Group, 1 << 20);
        assert!(recs.is_empty());
        wal.append_commit(1, &payloads(&[b"a0", b"a1"])).unwrap();
        wal.append_commit(2, &payloads(&[b"b0"])).unwrap();
        drop(wal);
        let (_, recs) = open_mem(&b, SyncPolicy::Group, 1 << 20);
        let got: Vec<(u64, &[u8])> = recs
            .iter()
            .map(|r| (r.epoch, r.payload.as_slice()))
            .collect();
        assert_eq!(
            got,
            vec![
                (1, b"a0".as_slice()),
                (1, b"a1".as_slice()),
                (2, b"b0".as_slice())
            ]
        );
    }

    #[test]
    fn group_policy_loses_unsynced_group_on_crash() {
        let b = MemBackend::new();
        let (mut wal, _) = open_mem(&b, SyncPolicy::Os, 1 << 20);
        wal.append_commit(1, &payloads(&[b"durable"])).unwrap();
        wal.sync().unwrap();
        wal.append_commit(2, &payloads(&[b"volatile"])).unwrap();
        let crashed = b.crashed();
        let (_, recs) = open_mem(&crashed, SyncPolicy::Os, 1 << 20);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].epoch, 1);
    }

    #[test]
    fn torn_tail_is_truncated_and_survives_reopen() {
        let b = MemBackend::new();
        let (mut wal, _) = open_mem(&b, SyncPolicy::Group, 1 << 20);
        wal.append_commit(1, &payloads(&[b"keep"])).unwrap();
        drop(wal);
        // Simulate a partial append: frame header bytes with no payload.
        let name = segment_name(0);
        let mut f = b
            .open_at(&name, b.read(&name).unwrap().len() as u64)
            .unwrap();
        f.append(&[9, 0, 0, 0, 1, 2, 3]).unwrap();
        f.sync().unwrap();
        drop(f);
        let (_, recs) = open_mem(&b, SyncPolicy::Group, 1 << 20);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].payload, b"keep");
        // The torn bytes are physically gone: a second reopen parses clean.
        let (_, recs) = open_mem(&b, SyncPolicy::Group, 1 << 20);
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn mid_segment_len_damage_in_active_segment_is_corruption() {
        let b = MemBackend::new();
        let (mut wal, _) = open_mem(&b, SyncPolicy::Group, 1 << 20);
        wal.append_commit(1, &payloads(&[b"first"])).unwrap();
        wal.append_commit(2, &payloads(&[b"second"])).unwrap();
        drop(wal);
        // Flip a bit in the *len* field of the first frame. The intact
        // second frame proves this is corruption of acknowledged data,
        // not a torn tail — truncating would silently drop epoch 2.
        b.flip_byte(&segment_name(0), 0);
        let err = Wal::open(Arc::new(b), SyncPolicy::Group, 1 << 20).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn mid_segment_payload_damage_in_active_segment_is_corruption() {
        let b = MemBackend::new();
        let (mut wal, _) = open_mem(&b, SyncPolicy::Group, 1 << 20);
        wal.append_commit(1, &payloads(&[b"first"])).unwrap();
        wal.append_commit(2, &payloads(&[b"second"])).unwrap();
        drop(wal);
        b.flip_byte(&segment_name(0), FRAME_HEADER); // first frame's payload
        let err = Wal::open(Arc::new(b), SyncPolicy::Group, 1 << 20).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn damage_in_the_final_frame_is_still_a_torn_tail() {
        let b = MemBackend::new();
        let (mut wal, _) = open_mem(&b, SyncPolicy::Group, 1 << 20);
        wal.append_commit(1, &payloads(&[b"keep"])).unwrap();
        wal.append_commit(2, &payloads(&[b"last"])).unwrap();
        drop(wal);
        // Damage the *last* frame's payload: no intact frame follows, so
        // this parses as an interrupted append and truncates to epoch 1.
        let name = segment_name(0);
        let len = b.read(&name).unwrap().len();
        b.flip_byte(&name, len - 1);
        let (_, recs) = open_mem(&b, SyncPolicy::Group, 1 << 20);
        let epochs: Vec<u64> = recs.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![1]);
    }

    #[test]
    fn corrupt_sealed_segment_is_an_error() {
        let b = MemBackend::new();
        // Tiny segment cap: every group seals its own segment.
        let (mut wal, _) = open_mem(&b, SyncPolicy::Group, 1);
        wal.append_commit(1, &payloads(&[b"one"])).unwrap();
        wal.append_commit(2, &payloads(&[b"two"])).unwrap();
        drop(wal);
        b.flip_byte(&segment_name(0), FRAME_HEADER); // damage payload of sealed segment
        let err = Wal::open(Arc::new(b), SyncPolicy::Group, 1).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn truncate_below_deletes_covered_segments_only() {
        let b = MemBackend::new();
        let (mut wal, _) = open_mem(&b, SyncPolicy::Group, 1);
        for epoch in 1..=4u64 {
            wal.append_commit(epoch, &payloads(&[b"x"])).unwrap();
        }
        assert_eq!(wal.sealed_segments(), 4);
        wal.truncate_below(2).unwrap();
        assert_eq!(wal.sealed_segments(), 2);
        drop(wal);
        let (_, recs) = open_mem(&b, SyncPolicy::Group, 1 << 20);
        let epochs: Vec<u64> = recs.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![3, 4]);
    }

    #[test]
    fn always_policy_is_durable_per_record() {
        let b = MemBackend::new();
        let (mut wal, _) = open_mem(&b, SyncPolicy::Always, 1 << 20);
        wal.append_commit(1, &payloads(&[b"r0", b"r1"])).unwrap();
        let crashed = b.crashed();
        let (_, recs) = open_mem(&crashed, SyncPolicy::Always, 1 << 20);
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn empty_payload_and_large_group_round_trip() {
        let b = MemBackend::new();
        let (mut wal, _) = open_mem(&b, SyncPolicy::Group, 1 << 20);
        let group: Vec<Vec<u8>> = (0..100u32).map(|i| i.to_le_bytes().to_vec()).collect();
        wal.append_commit(7, &group).unwrap();
        wal.append_commit(8, &payloads(&[b""])).unwrap();
        drop(wal);
        let (_, recs) = open_mem(&b, SyncPolicy::Group, 1 << 20);
        assert_eq!(recs.len(), 101);
        assert!(recs[100].payload.is_empty());
    }
}
