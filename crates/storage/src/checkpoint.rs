//! Atomically-published epoch checkpoints.
//!
//! A checkpoint file `ckpt-{epoch:016x}.ckpt` holds a full serialized
//! engine state as of `epoch`:
//!
//! ```text
//! b"IDQCKPT1" | u64 epoch | u64 payload_len | u32 crc32(payload) | payload
//! ```
//!
//! Publication is crash-atomic: the blob is streamed to a `.tmp` name,
//! synced, then renamed into place — a reader never observes a partial
//! `.ckpt`, and `.tmp` leftovers from a crashed checkpointer are ignored.
//! A successful checkpoint garbage-collects only `.tmp` files of
//! *strictly older* epochs: a `.tmp` at or above the published epoch may
//! be another checkpointer's in-flight stream, and deleting it out from
//! under that writer would fail its rename.
//!
//! [`latest_checkpoint`] walks checkpoints newest-first and returns the
//! first that validates, so a damaged latest checkpoint degrades to the
//! previous one instead of failing recovery (older checkpoints are only
//! deleted *after* a newer one is durably in place).

use std::sync::Arc;

use crate::codec::{crc32, Cursor};
use crate::error::StorageError;
use crate::StorageBackend;

const MAGIC: &[u8; 8] = b"IDQCKPT1";
const HEADER: usize = 8 + 8 + 8 + 4;

/// A decoded, validated checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    pub epoch: u64,
    pub payload: Vec<u8>,
}

fn checkpoint_name(epoch: u64) -> String {
    format!("ckpt-{epoch:016x}.ckpt")
}

fn tmp_name(epoch: u64) -> String {
    format!("ckpt-{epoch:016x}.tmp")
}

fn parse_checkpoint_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("ckpt-")?.strip_suffix(".ckpt")?;
    if rest.len() != 16 {
        return None;
    }
    u64::from_str_radix(rest, 16).ok()
}

fn parse_tmp_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("ckpt-")?.strip_suffix(".tmp")?;
    if rest.len() != 16 {
        return None;
    }
    u64::from_str_radix(rest, 16).ok()
}

/// Stream `payload` as the checkpoint for `epoch` and atomically publish
/// it. On success, strictly-older checkpoints and strictly-older `.tmp`
/// leftovers are removed (best-effort — a failed cleanup never fails the
/// checkpoint). `.tmp` files at or above `epoch` are left alone: they may
/// be a concurrent checkpointer's in-flight stream.
pub fn write_checkpoint(
    backend: &Arc<dyn StorageBackend>,
    epoch: u64,
    payload: &[u8],
) -> Result<(), StorageError> {
    let tmp = tmp_name(epoch);
    let mut file = backend.create(&tmp)?;
    let mut header = Vec::with_capacity(HEADER);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&epoch.to_le_bytes());
    header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    header.extend_from_slice(&crc32(payload).to_le_bytes());
    file.append(&header)?;
    file.append(payload)?;
    file.sync()?;
    drop(file);
    backend.rename(&tmp, &checkpoint_name(epoch))?;

    for name in backend.list()? {
        let stale_ckpt = parse_checkpoint_name(&name)
            .map(|e| e < epoch)
            .unwrap_or(false);
        let stale_tmp = parse_tmp_name(&name).map(|e| e < epoch).unwrap_or(false);
        if stale_ckpt || stale_tmp {
            let _ = backend.delete(&name);
        }
    }
    Ok(())
}

fn validate(name: &str, data: &[u8]) -> Result<Checkpoint, StorageError> {
    let corrupt = |offset: u64, reason: &str| StorageError::Corrupt {
        path: name.to_string(),
        offset,
        reason: reason.to_string(),
    };
    if data.len() < HEADER {
        return Err(corrupt(data.len() as u64, "truncated checkpoint header"));
    }
    if &data[..8] != MAGIC {
        return Err(corrupt(0, "bad checkpoint magic"));
    }
    let mut c = Cursor::new(&data[8..HEADER]);
    let epoch = c.take_u64("checkpoint epoch").expect("header sized");
    let len = c.take_u64("checkpoint len").expect("header sized");
    let crc = c.take_u32("checkpoint crc").expect("header sized");
    let payload = &data[HEADER..];
    if payload.len() as u64 != len {
        return Err(corrupt(HEADER as u64, "checkpoint payload length mismatch"));
    }
    if crc32(payload) != crc {
        return Err(corrupt(HEADER as u64, "checkpoint payload crc mismatch"));
    }
    if let Some(name_epoch) = parse_checkpoint_name(name) {
        if name_epoch != epoch {
            return Err(corrupt(8, "checkpoint epoch does not match file name"));
        }
    }
    Ok(Checkpoint {
        epoch,
        payload: payload.to_vec(),
    })
}

/// Find the newest checkpoint that passes validation, falling back to
/// older ones if newer files are damaged. `Ok(None)` means no `.ckpt`
/// file validates (e.g. a fresh directory).
pub fn latest_checkpoint(
    backend: &Arc<dyn StorageBackend>,
) -> Result<Option<Checkpoint>, StorageError> {
    let mut candidates: Vec<(u64, String)> = backend
        .list()?
        .into_iter()
        .filter_map(|name| parse_checkpoint_name(&name).map(|epoch| (epoch, name)))
        .collect();
    candidates.sort_unstable();
    for (_, name) in candidates.into_iter().rev() {
        let data = backend.read(&name)?;
        if let Ok(ckpt) = validate(&name, &data) {
            return Ok(Some(ckpt));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemBackend;

    fn arc(b: &MemBackend) -> Arc<dyn StorageBackend> {
        Arc::new(b.clone())
    }

    #[test]
    fn write_and_load_round_trip() {
        let b = MemBackend::new();
        write_checkpoint(&arc(&b), 12, b"state@12").unwrap();
        let ckpt = latest_checkpoint(&arc(&b)).unwrap().unwrap();
        assert_eq!(ckpt.epoch, 12);
        assert_eq!(ckpt.payload, b"state@12");
    }

    #[test]
    fn newer_checkpoint_wins_and_older_is_removed() {
        let b = MemBackend::new();
        write_checkpoint(&arc(&b), 5, b"old").unwrap();
        write_checkpoint(&arc(&b), 9, b"new").unwrap();
        let names = b.list().unwrap();
        assert_eq!(names.len(), 1, "{names:?}");
        let ckpt = latest_checkpoint(&arc(&b)).unwrap().unwrap();
        assert_eq!(
            (ckpt.epoch, ckpt.payload.as_slice()),
            (9, b"new".as_slice())
        );
    }

    #[test]
    fn damaged_latest_falls_back_to_previous() {
        let b = MemBackend::new();
        write_checkpoint(&arc(&b), 5, b"good").unwrap();
        // Forge a newer checkpoint, then damage its payload.
        let mut f = b.create(&checkpoint_name(9)).unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&9u64.to_le_bytes());
        bytes.extend_from_slice(&3u64.to_le_bytes());
        bytes.extend_from_slice(&crc32(b"bad").to_le_bytes());
        bytes.extend_from_slice(b"xxx"); // payload does not match its crc
        f.append(&bytes).unwrap();
        f.sync().unwrap();
        drop(f);
        let ckpt = latest_checkpoint(&arc(&b)).unwrap().unwrap();
        assert_eq!(
            (ckpt.epoch, ckpt.payload.as_slice()),
            (5, b"good".as_slice())
        );
    }

    #[test]
    fn partial_tmp_is_ignored() {
        let b = MemBackend::new();
        write_checkpoint(&arc(&b), 3, b"published").unwrap();
        let mut f = b.create(&tmp_name(8)).unwrap();
        f.append(b"half a checkp").unwrap();
        f.sync().unwrap();
        drop(f);
        let ckpt = latest_checkpoint(&arc(&b)).unwrap().unwrap();
        assert_eq!(ckpt.epoch, 3);
        // The next successful checkpoint garbage-collects the leftover.
        write_checkpoint(&arc(&b), 10, b"latest").unwrap();
        assert_eq!(b.list().unwrap(), vec![checkpoint_name(10)]);
    }

    #[test]
    fn inflight_newer_tmp_survives_gc() {
        let b = MemBackend::new();
        // Another checkpointer is mid-stream on a newer epoch …
        let mut f = b.create(&tmp_name(20)).unwrap();
        f.append(b"in flight").unwrap();
        drop(f);
        write_checkpoint(&arc(&b), 10, b"published").unwrap();
        // … its tmp survives the older checkpoint's GC, so its atomic
        // rename still succeeds afterwards.
        assert!(b.list().unwrap().contains(&tmp_name(20)));
        b.rename(&tmp_name(20), &checkpoint_name(20)).unwrap();
    }

    #[test]
    fn empty_backend_has_no_checkpoint() {
        let b = MemBackend::new();
        assert_eq!(latest_checkpoint(&arc(&b)).unwrap(), None);
    }
}
