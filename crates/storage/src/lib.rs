//! Durability tier for the indoor-dq MVCC service.
//!
//! This crate is deliberately a *leaf*: it knows nothing about buildings,
//! objects, or queries. It provides the four durability primitives the
//! engine composes:
//!
//! - [`StorageBackend`] — a pluggable, thread-safe blob-file namespace
//!   ([`FileBackend`] on a real filesystem, [`MemBackend`] for tests with
//!   byte-accurate crash simulation via [`MemBackend::crashed`]).
//! - [`codec`] — hand-rolled little-endian primitives plus CRC32, shared
//!   by the domain codecs in `idq-model` / `idq-objects` / `idq-core`.
//! - [`Wal`] — a segmented append-only log of commit groups with a
//!   configurable [`SyncPolicy`], torn-tail tolerant scanning, and prefix
//!   truncation once a checkpoint covers the segments.
//! - [`checkpoint`] — atomically-published full-state snapshots
//!   (tmp + sync + rename) with CRC validation and fallback to the
//!   newest older checkpoint when the latest is damaged.
//!
//! The durable-write contract the engine relies on: a commit group's
//! records are appended (and synced, per policy) *before* the epoch swap
//! publishes the group, so every state an observer has seen is
//! reconstructible from checkpoint + log suffix.

pub mod backend;
pub mod checkpoint;
pub mod codec;
pub mod error;
pub mod file;
pub mod mem;
pub mod wal;

pub use backend::{LogFile, StorageBackend};
pub use checkpoint::{latest_checkpoint, write_checkpoint, Checkpoint};
pub use error::StorageError;
pub use file::FileBackend;
pub use mem::MemBackend;
pub use wal::{SyncPolicy, Wal, WalRecord};
