//! Typed storage failures.
//!
//! Variants are `Clone + PartialEq` (mirroring the engine's `EngineError`
//! conventions) so they can ride inside engine errors and be asserted on
//! in tests. IO causes are captured as rendered strings: `std::io::Error`
//! is neither `Clone` nor `PartialEq`, and the rendered form is what a
//! recovery log needs anyway.

use std::fmt;

/// An error from the durability tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An underlying backend operation failed (open, append, sync,
    /// rename, ...). `op` names the operation, `path` the file it
    /// targeted, `message` the rendered OS error.
    Io {
        op: &'static str,
        path: String,
        message: String,
    },
    /// A file exists but its contents fail structural or CRC validation
    /// somewhere other than a tolerated torn tail.
    Corrupt {
        path: String,
        offset: u64,
        reason: String,
    },
    /// A payload decoded from an otherwise-valid frame does not parse as
    /// the expected domain value. `what` names the value being decoded,
    /// `offset` is the byte position within the payload.
    Decode { what: &'static str, offset: usize },
    /// Recovery was requested but the backend holds no valid checkpoint.
    NoCheckpoint { path: String },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { op, path, message } => {
                write!(f, "storage io error during {op} on {path:?}: {message}")
            }
            StorageError::Corrupt {
                path,
                offset,
                reason,
            } => {
                write!(
                    f,
                    "corrupt storage file {path:?} at byte {offset}: {reason}"
                )
            }
            StorageError::Decode { what, offset } => {
                write!(f, "failed to decode {what} at payload byte {offset}")
            }
            StorageError::NoCheckpoint { path } => {
                write!(f, "no valid checkpoint found in {path:?}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl StorageError {
    /// Wrap an `std::io::Error` from operation `op` on `path`.
    pub fn io(op: &'static str, path: &str, err: &std::io::Error) -> Self {
        StorageError::Io {
            op,
            path: path.to_string(),
            message: err.to_string(),
        }
    }
}
