//! The real-filesystem backend.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::backend::{LogFile, StorageBackend};
use crate::error::StorageError;

/// A [`StorageBackend`] over one directory on the local filesystem.
///
/// Files are created inside `root` (created on open if missing). `sync`
/// maps to `File::sync_data`; `rename` maps to `fs::rename` followed by a
/// best-effort fsync of the directory so the rename itself is durable on
/// filesystems that require it.
#[derive(Debug)]
pub struct FileBackend {
    root: PathBuf,
}

impl FileBackend {
    /// Open (creating if needed) the directory at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StorageError> {
        let root = root.into();
        fs::create_dir_all(&root)
            .map_err(|e| StorageError::io("create_dir_all", &root.display().to_string(), &e))?;
        Ok(FileBackend { root })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn io(&self, op: &'static str, name: &str, err: &std::io::Error) -> StorageError {
        StorageError::io(op, &self.path_of(name).display().to_string(), err)
    }

    fn sync_dir(&self) {
        // Durability of renames/creates needs the directory entry flushed.
        // Best-effort: not every platform lets you fsync a directory.
        if let Ok(dir) = File::open(&self.root) {
            let _ = dir.sync_all();
        }
    }
}

#[derive(Debug)]
struct FsLogFile {
    file: File,
    path: String,
    len: u64,
}

impl LogFile for FsLogFile {
    fn append(&mut self, data: &[u8]) -> Result<(), StorageError> {
        self.file
            .write_all(data)
            .map_err(|e| StorageError::io("append", &self.path, &e))?;
        self.len += data.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.file
            .sync_data()
            .map_err(|e| StorageError::io("sync", &self.path, &e))
    }

    fn len(&self) -> u64 {
        self.len
    }
}

impl StorageBackend for FileBackend {
    fn label(&self) -> String {
        self.root.display().to_string()
    }

    fn create(&self, name: &str) -> Result<Box<dyn LogFile>, StorageError> {
        let path = self.path_of(name);
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| self.io("create", name, &e))?;
        self.sync_dir();
        Ok(Box::new(FsLogFile {
            file,
            path: path.display().to_string(),
            len: 0,
        }))
    }

    fn open_at(&self, name: &str, len: u64) -> Result<Box<dyn LogFile>, StorageError> {
        let path = self.path_of(name);
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| self.io("open", name, &e))?;
        file.set_len(len)
            .map_err(|e| self.io("truncate", name, &e))?;
        // Make the truncation durable before new appends land after it.
        file.sync_data().map_err(|e| self.io("sync", name, &e))?;
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::Start(len))
            .map_err(|e| self.io("seek", name, &e))?;
        Ok(Box::new(FsLogFile {
            file,
            path: path.display().to_string(),
            len,
        }))
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError> {
        fs::read(self.path_of(name)).map_err(|e| self.io("read", name, &e))
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        let entries = fs::read_dir(&self.root)
            .map_err(|e| StorageError::io("read_dir", &self.root.display().to_string(), &e))?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry
                .map_err(|e| StorageError::io("read_dir", &self.root.display().to_string(), &e))?;
            if entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        Ok(names)
    }

    fn delete(&self, name: &str) -> Result<(), StorageError> {
        fs::remove_file(self.path_of(name)).map_err(|e| self.io("delete", name, &e))?;
        self.sync_dir();
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), StorageError> {
        fs::rename(self.path_of(from), self.path_of(to))
            .map_err(|e| self.io("rename", from, &e))?;
        self.sync_dir();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("idq-storage-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn create_append_read_round_trip() {
        let root = temp_root("rt");
        let b = FileBackend::open(&root).unwrap();
        let mut f = b.create("a.log").unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync().unwrap();
        assert_eq!(f.len(), 11);
        drop(f);
        assert_eq!(b.read("a.log").unwrap(), b"hello world");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn open_at_truncates_tail() {
        let root = temp_root("trunc");
        let b = FileBackend::open(&root).unwrap();
        let mut f = b.create("a.log").unwrap();
        f.append(b"hello world").unwrap();
        f.sync().unwrap();
        drop(f);
        let mut f = b.open_at("a.log", 5).unwrap();
        assert_eq!(f.len(), 5);
        f.append(b"!").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(b.read("a.log").unwrap(), b"hello!");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn list_rename_delete() {
        let root = temp_root("ops");
        let b = FileBackend::open(&root).unwrap();
        let mut f = b.create("x.tmp").unwrap();
        f.append(b"payload").unwrap();
        f.sync().unwrap();
        drop(f);
        b.rename("x.tmp", "x.ckpt").unwrap();
        let names = b.list().unwrap();
        assert_eq!(names, vec!["x.ckpt".to_string()]);
        b.delete("x.ckpt").unwrap();
        assert!(b.list().unwrap().is_empty());
        assert!(b.delete("x.ckpt").is_err());
        let _ = fs::remove_dir_all(&root);
    }
}
