//! The pluggable storage abstraction.
//!
//! A backend is a flat namespace of append-only blob files — exactly the
//! shape the WAL (segments) and checkpointer (snapshot blobs) need, and
//! small enough that an in-memory test double can model crash semantics
//! byte-accurately. Directory-level durability (making a rename itself
//! survive power loss) is the backend's responsibility.

use crate::error::StorageError;

/// An open, appendable file.
///
/// `append` makes bytes *visible* to a post-crash reader only after a
/// subsequent [`LogFile::sync`] (or the backend's own policy makes writes
/// durable); the WAL layers its fsync policy on top of this contract.
pub trait LogFile: Send + std::fmt::Debug {
    /// Append bytes at the end of the file.
    fn append(&mut self, data: &[u8]) -> Result<(), StorageError>;

    /// Force everything appended so far to durable storage.
    fn sync(&mut self) -> Result<(), StorageError>;

    /// Current file length in bytes (including unsynced appends).
    fn len(&self) -> u64;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A thread-safe namespace of blob files.
///
/// All methods take `&self`: backends are shared behind an `Arc` between
/// the commit path (WAL appends) and the background checkpoint writer.
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    /// A human-readable location (directory path, or a test label) used in
    /// error context.
    fn label(&self) -> String;

    /// Create `name`, truncating any existing file of that name.
    fn create(&self, name: &str) -> Result<Box<dyn LogFile>, StorageError>;

    /// Reopen `name` for append, first truncating it to exactly `len`
    /// bytes. Recovery uses this to discard a torn WAL tail.
    fn open_at(&self, name: &str, len: u64) -> Result<Box<dyn LogFile>, StorageError>;

    /// Read the full contents of `name`.
    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError>;

    /// List all file names in the namespace, in unspecified order.
    fn list(&self) -> Result<Vec<String>, StorageError>;

    /// Delete `name`. Deleting a nonexistent file is an error.
    fn delete(&self, name: &str) -> Result<(), StorageError>;

    /// Atomically replace `to` with `from`. The implementation must make
    /// the rename itself durable (directory sync on filesystems).
    fn rename(&self, from: &str, to: &str) -> Result<(), StorageError>;
}
