//! The in-memory test backend with byte-accurate crash simulation.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::backend::{LogFile, StorageBackend};
use crate::error::StorageError;

#[derive(Debug, Clone)]
struct MemFile {
    data: Vec<u8>,
    /// Bytes guaranteed durable: everything past this offset is lost by
    /// [`MemBackend::crashed`].
    synced: usize,
}

/// An in-memory [`StorageBackend`] that tracks, per file, how many bytes
/// have been made durable via [`LogFile::sync`].
///
/// Cloning shares the underlying store (the handle is an `Arc`), so a test
/// can keep a handle while the engine owns another. [`MemBackend::crashed`]
/// returns an *independent* deep copy in which every file is truncated to
/// its synced length — the exact state a power loss would leave on disk.
///
/// Metadata operations (`create`, `rename`, `delete`) are modeled as
/// immediately durable, mirroring [`FileBackend`](crate::FileBackend)'s
/// directory syncs; data bytes are durable only up to the last `sync`.
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    files: Arc<Mutex<HashMap<String, MemFile>>>,
    label: String,
}

impl MemBackend {
    pub fn new() -> Self {
        MemBackend {
            files: Arc::new(Mutex::new(HashMap::new())),
            label: "mem".to_string(),
        }
    }

    pub fn with_label(label: &str) -> Self {
        MemBackend {
            files: Arc::new(Mutex::new(HashMap::new())),
            label: label.to_string(),
        }
    }

    /// Simulate a crash: an independent backend whose files contain only
    /// their durable (synced) prefixes.
    pub fn crashed(&self) -> MemBackend {
        let files = self.files.lock().expect("mem backend poisoned");
        let survivors: HashMap<String, MemFile> = files
            .iter()
            .map(|(name, f)| {
                (
                    name.clone(),
                    MemFile {
                        data: f.data[..f.synced].to_vec(),
                        synced: f.synced,
                    },
                )
            })
            .collect();
        MemBackend {
            files: Arc::new(Mutex::new(survivors)),
            label: format!("{}+crashed", self.label),
        }
    }

    /// Total bytes currently held (synced or not) — handy for asserting a
    /// checkpoint actually truncated the log.
    pub fn total_bytes(&self) -> usize {
        let files = self.files.lock().expect("mem backend poisoned");
        files.values().map(|f| f.data.len()).sum()
    }

    /// Durable length of `name`, if it exists.
    pub fn synced_len(&self, name: &str) -> Option<usize> {
        let files = self.files.lock().expect("mem backend poisoned");
        files.get(name).map(|f| f.synced)
    }

    /// Corrupt one durable byte in `name` at `offset` (test helper for
    /// damaged-file scenarios).
    pub fn flip_byte(&self, name: &str, offset: usize) {
        let mut files = self.files.lock().expect("mem backend poisoned");
        let f = files.get_mut(name).expect("flip_byte: no such file");
        f.data[offset] ^= 0xFF;
    }
}

#[derive(Debug)]
struct MemLogFile {
    files: Arc<Mutex<HashMap<String, MemFile>>>,
    name: String,
    len: u64,
}

impl MemLogFile {
    fn with_file<T>(
        &self,
        op: &'static str,
        f: impl FnOnce(&mut MemFile) -> T,
    ) -> Result<T, StorageError> {
        let mut files = self.files.lock().expect("mem backend poisoned");
        match files.get_mut(&self.name) {
            Some(file) => Ok(f(file)),
            None => Err(StorageError::Io {
                op,
                path: self.name.clone(),
                message: "file no longer exists".to_string(),
            }),
        }
    }
}

impl LogFile for MemLogFile {
    fn append(&mut self, data: &[u8]) -> Result<(), StorageError> {
        self.with_file("append", |f| f.data.extend_from_slice(data))?;
        self.len += data.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.with_file("sync", |f| f.synced = f.data.len())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

impl StorageBackend for MemBackend {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn create(&self, name: &str) -> Result<Box<dyn LogFile>, StorageError> {
        let mut files = self.files.lock().expect("mem backend poisoned");
        files.insert(
            name.to_string(),
            MemFile {
                data: Vec::new(),
                synced: 0,
            },
        );
        Ok(Box::new(MemLogFile {
            files: Arc::clone(&self.files),
            name: name.to_string(),
            len: 0,
        }))
    }

    fn open_at(&self, name: &str, len: u64) -> Result<Box<dyn LogFile>, StorageError> {
        let mut files = self.files.lock().expect("mem backend poisoned");
        let file = files.get_mut(name).ok_or_else(|| StorageError::Io {
            op: "open",
            path: name.to_string(),
            message: "no such file".to_string(),
        })?;
        let len_usize = usize::try_from(len).expect("mem file length");
        if len_usize > file.data.len() {
            return Err(StorageError::Io {
                op: "truncate",
                path: name.to_string(),
                message: format!("cannot extend to {len} (have {})", file.data.len()),
            });
        }
        file.data.truncate(len_usize);
        file.synced = file.synced.min(len_usize);
        Ok(Box::new(MemLogFile {
            files: Arc::clone(&self.files),
            name: name.to_string(),
            len,
        }))
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError> {
        let files = self.files.lock().expect("mem backend poisoned");
        files
            .get(name)
            .map(|f| f.data.clone())
            .ok_or_else(|| StorageError::Io {
                op: "read",
                path: name.to_string(),
                message: "no such file".to_string(),
            })
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        let files = self.files.lock().expect("mem backend poisoned");
        Ok(files.keys().cloned().collect())
    }

    fn delete(&self, name: &str) -> Result<(), StorageError> {
        let mut files = self.files.lock().expect("mem backend poisoned");
        files
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StorageError::Io {
                op: "delete",
                path: name.to_string(),
                message: "no such file".to_string(),
            })
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), StorageError> {
        let mut files = self.files.lock().expect("mem backend poisoned");
        let file = files.remove(from).ok_or_else(|| StorageError::Io {
            op: "rename",
            path: from.to_string(),
            message: "no such file".to_string(),
        })?;
        files.insert(to.to_string(), file);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_drops_unsynced_suffix() {
        let b = MemBackend::new();
        let mut f = b.create("a.log").unwrap();
        f.append(b"durable").unwrap();
        f.sync().unwrap();
        f.append(b" lost").unwrap();
        let crashed = b.crashed();
        assert_eq!(crashed.read("a.log").unwrap(), b"durable");
        // The original is untouched.
        assert_eq!(b.read("a.log").unwrap(), b"durable lost");
    }

    #[test]
    fn crash_is_independent_of_original() {
        let b = MemBackend::new();
        let mut f = b.create("a.log").unwrap();
        f.append(b"x").unwrap();
        f.sync().unwrap();
        let crashed = b.crashed();
        f.append(b"y").unwrap();
        f.sync().unwrap();
        assert_eq!(crashed.read("a.log").unwrap(), b"x");
    }

    #[test]
    fn open_at_truncates_and_clamps_synced() {
        let b = MemBackend::new();
        let mut f = b.create("a.log").unwrap();
        f.append(b"0123456789").unwrap();
        f.sync().unwrap();
        drop(f);
        let mut f = b.open_at("a.log", 4).unwrap();
        f.append(b"AB").unwrap();
        assert_eq!(b.read("a.log").unwrap(), b"0123AB");
        // Only the surviving prefix counts as synced until the next sync.
        assert_eq!(b.synced_len("a.log"), Some(4));
    }

    #[test]
    fn rename_keeps_durable_bytes() {
        let b = MemBackend::new();
        let mut f = b.create("x.tmp").unwrap();
        f.append(b"snapshot").unwrap();
        f.sync().unwrap();
        drop(f);
        b.rename("x.tmp", "x.ckpt").unwrap();
        assert_eq!(b.crashed().read("x.ckpt").unwrap(), b"snapshot");
    }
}
