//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of the criterion API the fig12–fig15 benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], [`BenchmarkId`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a simple wall-clock mean over `sample_size` batches — no
//! statistics, outlier analysis or HTML reports. When the binary is invoked
//! with `--test` (what `cargo test` passes to `harness = false` bench
//! targets), each benchmark body runs exactly once, so benches stay
//! smoke-tested without paying measurement time.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_id: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs one benchmark body repeatedly and accumulates elapsed time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` `self.iters` times, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` invokes harness = false bench executables with
        // `--test`; `cargo bench` passes `--bench`. In test mode every
        // routine runs once, as real criterion does.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        if self.criterion.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("{label}: ok (test mode)");
            return;
        }
        // One warm-up batch, then `sample_size` timed batches (or until the
        // measurement-time budget runs out for slow routines).
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let budget = self.measurement_time;
        let deadline = Instant::now() + budget;
        let mut total = Duration::ZERO;
        let mut samples = 0u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
            samples += 1;
            if Instant::now() > deadline {
                break;
            }
        }
        let mean = total / samples.max(1) as u32;
        println!("{label}: mean {mean:?} over {samples} samples");
    }

    /// Benchmarks `f`, handing it a reference to `input`.
    pub fn bench_with_input<I: ?Sized, ID: Into<BenchmarkId>, F>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Benchmarks a routine with no external input.
    pub fn bench_function<ID: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: ID,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Ends the group (kept for API parity; no-op here).
    pub fn finish(self) {}
}

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
