//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest the `tests/properties.rs` suite uses:
//! the [`proptest!`] macro over functions with `pattern in strategy`
//! arguments, range / tuple / `any::<T>()` / `collection::vec` strategies,
//! `ProptestConfig::with_cases`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest, by design:
//!
//! * cases are drawn from a **deterministic** RNG (fixed seed), so runs are
//!   reproducible in CI without a persistence file;
//! * there is **no shrinking** — a failing case panics with the plain
//!   assertion message and the drawn values are recoverable from the seed.

pub use ::rand;

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SampleRange};

pub mod test_runner {
    //! Runner configuration (API parity with `proptest::test_runner`).

    /// How many random cases each `proptest!` test executes.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the tier-1 suite fast.
            Config { cases: 64 }
        }
    }

    /// The name the prelude exports.
    pub type ProptestConfig = Config;
}

pub mod strategy {
    //! Value-generation strategies.

    use super::*;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_strategy_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    self.clone().sample_from(rng)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    self.clone().sample_from(rng)
                }
            }
        )*};
    }
    impl_strategy_range!(f64, u8, u16, u32, u64, usize);

    /// Strategy of [`any`]: the type's whole-domain distribution.
    pub struct Any<T>(PhantomData<T>);

    /// Types with a default whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.random()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            // Finite values only — the property bodies do arithmetic.
            rng.random_range(-1.0e9..1.0e9)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_strategy_tuple {
        ($(($($s:ident),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }
    impl_strategy_tuple!(
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );

    /// Sizes accepted by [`collection::vec`]: a fixed length or a range.
    pub struct SizeRange(pub Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            // Real proptest rejects empty size ranges; surfacing the
            // authoring bug beats silently picking a length.
            assert!(
                !self.size.is_empty(),
                "collection::vec: empty size range {:?}",
                self.size
            );
            let n = if self.size.len() == 1 {
                self.size.start
            } else {
                rng.random_range(self.size.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec`s with `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into().0,
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that draws `cases` random inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            <$crate::test_runner::ProptestConfig as ::std::default::Default>::default();
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __pt_rng =
                <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                    0x9D0F_F00D_u64 ^ (stringify!($name).len() as u64),
                );
            for __pt_case in 0..cfg.cases {
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __pt_rng),)+
                );
                let _ = __pt_case;
                $body
            }
        }
    )*};
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples(
            x in 1.0f64..2.0,
            flags in collection::vec(any::<bool>(), 3),
            pair in (0u16..4, 10.0f64..20.0),
            sized in collection::vec(0usize..5, 2..6),
        ) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert_eq!(flags.len(), 3);
            prop_assert!(pair.0 < 4 && (10.0..20.0).contains(&pair.1));
            prop_assert!((2..6).contains(&sized.len()));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(b in 0u8..3) {
            prop_assert!(b < 3);
        }
    }
}
