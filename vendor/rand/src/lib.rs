//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the (small) API surface the workspace actually uses, with the
//! rand-0.9 method names:
//!
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`];
//! * [`RngExt::random`] / [`RngExt::random_range`] / [`RngExt::random_bool`];
//! * uniform sampling over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, which is all the tests and workload generators need.
//! It is **not** cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` using the high 53 bits.
    fn next_f64(&mut self) -> f64 {
        // 2^-53 scaling of a 53-bit mantissa → uniform in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of an RNG from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from an unconstrained uniform distribution via
/// [`RngExt::random`].
pub trait Random: Sized {
    /// Samples one value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

// No f32 impls: the workspace only samples f64, and an f64→f32 narrowing
// can round up to the exclusive upper bound, silently breaking the
// half-open-range contract.

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo bias is ≤ span/2^64 — irrelevant for test workloads.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// The user-facing sampling methods (rand 0.9 names), available on every
/// [`RngCore`] implementor.
pub trait RngExt: RngCore {
    /// Samples an unconstrained uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Samples uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Compatibility alias: rand 0.8 spelled the extension trait `Rng`.
pub use self::RngExt as Rng;

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded through SplitMix64 — the stand-in for rand's
    /// `StdRng`. Deterministic per seed; not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Everything most call sites want.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Random, RngCore, RngExt, SampleRange, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random_range(3.0..5.0);
            assert!((3.0..5.0).contains(&x));
            let y: usize = rng.random_range(0..10);
            assert!(y < 10);
            let z: u16 = rng.random_range(2..=4);
            assert!((2..=4).contains(&z));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
